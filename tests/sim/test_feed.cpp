// Streaming-feed battery (DESIGN.md Sect. 16), two fronts:
//
//  - FeedStorm: the catch-up storm. DFKY_STORM_RECEIVERS stale
//    Receiver+RecoveryClient pairs (default 10000; 100000 is the
//    env-gated full run) all miss one New-period, then the first
//    post-gap broadcast releases the herd onto the CatchUpResponder at
//    once — the synchronous bus turns every recovery into a nested storm
//    inside one broadcast() call. Gate: zero quarantine-eligible
//    receivers left behind — every receiver back to kCurrent at the
//    manager's period, no quarantined envelopes on either side, every
//    client inside its attempt budget, and post-recovery content
//    decrypts for everyone. Herds beyond 10k run in waves of 10k so the
//    O(N^2) all-to-all bus delivery stays tractable; every wave still
//    storms a shared responder on one manager.
//
//  - SimFeed: the real Reactor+FeedHub over a lossy SimCluster.
//    Seed-swept (DFKY_SIM_SEEDS) subscriber churn: new-periods committed
//    through the cluster primary are published as feed frames,
//    subscribers join mid-stream with resume-from-period replay, some
//    are killed abruptly right after a publish (kill-mid-broadcast), a
//    follower dies and reboots under ack loss. Survivors must see a
//    gapless contiguous frame sequence from their join point to the
//    final period. tools/sanitize_check.sh re-runs SimFeed under ASan
//    and TSan with a 20-seed sweep.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "broadcast/faulty_bus.h"
#include "broadcast/recovery.h"
#include "core/manager.h"
#include "daemon/feed.h"
#include "daemon/protocol.h"
#include "daemon/reactor.h"
#include "rng/chacha_rng.h"
#include "sim/sim_cluster.h"
#include "test_util.h"

namespace dfky::sim {
namespace {

std::size_t env_count(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto n = daemon::parse_u64(env);
    if (n && *n > 0) return static_cast<std::size_t>(*n);
  }
  return fallback;
}

std::size_t sweep_seeds() {
  return env_count("DFKY_SIM_SEEDS", 5);
}

Bytes str(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// FeedStorm — the catch-up storm.

TEST(FeedStorm, CatchUpStormLeavesNoReceiverBehind) {
  const std::size_t total = env_count("DFKY_STORM_RECEIVERS", 10000);
  // Beyond one wave the all-to-all bus makes the storm quadratic; waves
  // keep the full 100k run inside the test timeout while every receiver
  // still hammers the same responder on the same manager.
  constexpr std::size_t kWaveCap = 10000;
  const std::uint64_t seed = 0xfeedd00d;

  ChaChaRng rng(seed);
  const SystemParams sp = test::test_params(2, seed ^ 0xfa157);
  // Clean links: the load IS the fault. Channel-fault mixes live in
  // test_faults.cpp; here every request must land on the responder.
  FaultyBus bus(FaultPlan{.seed = seed});
  SecurityManager mgr(sp, rng);
  ChaChaRng responder_rng(seed ^ 0xd00d);
  CatchUpResponder responder(mgr, bus, responder_rng);
  ContentProvider tv("storm", sp, mgr.public_key(), bus);

  std::size_t done = 0;
  std::uint64_t nonce = 1;
  std::uint64_t requests_total = 0;
  std::uint64_t bundles_replayed_total = 0;
  // Aggregate violations instead of 10k+ per-receiver EXPECTs so a broken
  // run fails with counts, not megabytes of log.
  std::size_t not_current = 0, wrong_period = 0, quarantined = 0;
  std::size_t not_recovered = 0, over_budget = 0, no_request = 0;
  std::size_t no_replay = 0, missed_finale = 0;

  while (done < total) {
    const std::size_t wave = std::min(kWaveCap, total - done);
    std::vector<SecurityManager::AddedUser> users;
    users.reserve(wave);
    for (std::size_t i = 0; i < wave; ++i) users.push_back(mgr.add_user(rng));

    constexpr std::uint32_t kBudget = 6;
    std::vector<std::unique_ptr<SubscriberClient>> subs;
    std::vector<std::unique_ptr<RecoveryClient>> recov;
    subs.reserve(wave);
    recov.reserve(wave);
    for (std::size_t i = 0; i < wave; ++i) {
      subs.push_back(std::make_unique<SubscriberClient>(
          sp, users[i].key, mgr.verification_key(), bus));
      const RecoveryPolicy policy{
          .attempt_budget = kBudget, .backoff_base = 1, .nonce = nonce++};
      recov.push_back(std::make_unique<RecoveryClient>(*subs.back(), bus, policy));
    }
    announce_public_key(bus, sp.group, mgr.public_key());

    // Park the herd: the whole wave misses this New-period.
    bus.drop_next_change_periods(1);
    announce_reset(bus, sp.group, mgr.new_period(rng));
    announce_public_key(bus, sp.group, mgr.public_key());

    // The first post-gap broadcast exposes the period gap. The bus is
    // synchronous, so every RecoveryClient requests, the responder
    // answers and the bundle replays — all nested inside this call.
    tv.broadcast(str("storm-payload"), rng);

    const std::uint64_t period = mgr.period();
    for (std::size_t i = 0; i < wave; ++i) {
      if (subs[i]->state() != ReceiverState::kCurrent) ++not_current;
      if (subs[i]->period() != period) ++wrong_period;
      if (subs[i]->quarantined_envelopes() != 0) ++quarantined;
      if (recov[i]->status() != RecoveryClient::Status::kRecovered) {
        ++not_recovered;
      }
      if (recov[i]->requests_sent() == 0) ++no_request;
      if (recov[i]->requests_sent() > kBudget) ++over_budget;
      if (recov[i]->bundles_replayed() == 0) ++no_replay;
      requests_total += recov[i]->requests_sent();
      bundles_replayed_total += recov[i]->bundles_replayed();
    }

    // Recovery must actually restore service: the finale decrypts for
    // every receiver in the wave.
    tv.broadcast(str("storm-finale"), rng);
    for (std::size_t i = 0; i < wave; ++i) {
      if (subs[i]->received_content().empty() ||
          subs[i]->received_content().back() != str("storm-finale")) {
        ++missed_finale;
      }
    }
    done += wave;
  }

  EXPECT_EQ(not_current, 0u) << "receivers stuck stale";
  EXPECT_EQ(wrong_period, 0u);
  EXPECT_EQ(quarantined, 0u) << "quarantine-eligible receivers left behind";
  EXPECT_EQ(not_recovered, 0u);
  EXPECT_EQ(no_request, 0u);
  EXPECT_EQ(over_budget, 0u) << "attempt budget exceeded";
  EXPECT_EQ(no_replay, 0u);
  EXPECT_EQ(missed_finale, 0u) << "post-recovery content lost";
  // Responder-side budget/backoff sanity: every receiver's request was
  // answered, none quarantined, and the storm stayed within one request
  // per receiver per backoff window.
  EXPECT_EQ(responder.requests_quarantined(), 0u);
  EXPECT_GE(responder.requests_answered(), total);
  EXPECT_EQ(responder.requests_answered(), requests_total);
  EXPECT_LE(requests_total, static_cast<std::uint64_t>(total) * 6);
  EXPECT_GE(bundles_replayed_total, total);
}

// ---------------------------------------------------------------------------
// SimFeed — Reactor+FeedHub fan-out over a lossy SimCluster.

constexpr auto kDeadline = std::chrono::seconds(10);

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::listen(fd, 64), 0);
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const timeval tv{.tv_sec = 10, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> recv_line(int fd, std::string& buf) {
  for (;;) {
    const std::size_t pos = buf.find('\n');
    if (pos != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// `bcast new-period period=<p> bundles=...` -> p; nullopt otherwise.
std::optional<std::uint64_t> frame_period(const std::string& line) {
  constexpr std::string_view kPrefix = "bcast new-period period=";
  if (line.rfind(kPrefix, 0) != 0) return std::nullopt;
  const std::size_t end = line.find(' ', kPrefix.size());
  return daemon::parse_u64(
      std::string_view(line).substr(kPrefix.size(), end - kPrefix.size()));
}

/// A Reactor serving a SimCluster primary over a fresh unix socket, with
/// a FeedHub wired in — the daemon's front end minus the daemon.
struct FeedHarness {
  std::string dir;
  std::string sock;
  int lfd = -1;
  int wake[2] = {-1, -1};
  std::optional<daemon::Reactor> reactor;
  std::thread thr;

  FeedHarness(SimNode& node, daemon::FeedHub& hub) {
    char tmpl[] = "/tmp/dfky_feed_sim_XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;
    sock = dir + "/d.sock";
    lfd = listen_unix(sock);
    EXPECT_EQ(::pipe2(wake, O_CLOEXEC), 0);
    daemon::ReactorOptions opts;
    opts.listen_fd = lfd;
    opts.wake_fd = wake[0];
    opts.workers = 2;
    opts.feed = &hub;
    const int wake_wr = wake[1];
    reactor.emplace(
        opts,
        [&node](const std::string& line) {
          const auto resp = node.request(line);
          return daemon::Reactor::Result{resp.value_or("err node-dead"), false};
        },
        std::function<std::size_t()>{},
        [wake_wr] {
          const char b = 1;
          [[maybe_unused]] const ssize_t n = ::write(wake_wr, &b, 1);
        });
    thr = std::thread([this] { reactor->run(); });
  }

  ~FeedHarness() {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake[1], &b, 1);
    thr.join();
    ::close(lfd);
    ::close(wake[0]);
    ::close(wake[1]);
    ::unlink(sock.c_str());
    ::rmdir(dir.c_str());
  }
};

struct FeedSub {
  int fd = -1;
  std::string buf;
  std::uint64_t from = 0;                // periods (from, final] are owed
  std::vector<std::uint64_t> seen;
};

void run_feed_churn(std::uint64_t seed) {
  SimCluster cluster(/*shards=*/2, /*followers=*/1, seed,
                     LinkFaults{.ack_loss_per_mille = 150, .dup_per_mille = 80});

  // Replay source: the committed frame history, exactly what the daemon
  // rebuilds from the shards' reset archives.
  std::mutex hist_mu;
  std::vector<std::pair<std::uint64_t, std::string>> hist;
  daemon::FeedHub hub;
  hub.set_replay([&](std::optional<std::uint64_t> from) {
    daemon::FeedReplay rep;
    const std::lock_guard<std::mutex> lock(hist_mu);
    rep.current = hist.empty() ? 0 : hist.back().first;
    rep.oldest = hist.empty() ? 1 : hist.front().first;
    rep.ok = true;
    if (!from || *from >= rep.current) return rep;
    for (const auto& [p, line] : hist) {
      if (p > *from) rep.lines.push_back(line);
    }
    return rep;
  });

  FeedHarness h(cluster.primary(), hub);
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  std::vector<FeedSub> subs;  // subs[0] is the canary: never killed
  std::uint64_t last_period = 0;
  std::size_t killed = 0;

  auto add_sub = [&](std::uint64_t from) {
    FeedSub s;
    s.fd = connect_unix(h.sock);
    ASSERT_GE(s.fd, 0);
    s.from = from;
    ASSERT_TRUE(send_all(s.fd, "subscribe " + std::to_string(from) + "\n"));
    const auto line = recv_line(s.fd, s.buf);
    ASSERT_TRUE(line.has_value());
    ASSERT_EQ(*line, "ok period=" + std::to_string(last_period) +
                         " replayed=" + std::to_string(last_period - from));
    subs.push_back(std::move(s));
  };

  add_sub(0);  // the canary rides the stream end to end
  add_sub(0);
  add_sub(0);
  if (::testing::Test::HasFatalFailure()) return;

  int control = connect_unix(h.sock);
  ASSERT_GE(control, 0);
  std::string control_buf;

  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    // A follower power-cut mid-run, rebooted two rounds later: the feed
    // must keep publishing while replication degrades and re-seeds.
    if (round == 3) cluster.kill_follower(0);
    if (round == 5) cluster.restart_follower(0, seed + 77);

    ASSERT_TRUE(send_all(control, "new-period\n"));
    const auto raw = recv_line(control, control_buf);
    ASSERT_TRUE(raw.has_value());
    const auto resp = daemon::parse_response(*raw);
    ASSERT_TRUE(resp.has_value() && resp->ok) << *raw;
    const auto period = daemon::parse_u64(resp->fields.at("period"));
    ASSERT_TRUE(period.has_value());
    const std::string frame = "bcast new-period period=" +
                              std::to_string(*period) +
                              " bundles=" + resp->fields.at("bundles");
    {
      const std::lock_guard<std::mutex> lock(hist_mu);
      hist.emplace_back(*period, frame);
    }
    last_period = *period;
    hub.publish(frame, *period);

    // Kill-mid-broadcast: yank a subscriber right behind the publish, so
    // the fan-out races its death. Nobody else may lose a frame for it.
    if (subs.size() > 2 && rng() % 3 == 0) {
      const std::size_t victim = 1 + rng() % (subs.size() - 1);
      ::close(subs[victim].fd);
      subs.erase(subs.begin() + static_cast<std::ptrdiff_t>(victim));
      ++killed;
    }

    // The canary consuming this round's frame serializes the pipeline:
    // once it lands, the hub's pending queue is drained, so the next
    // subscribe's replay can never race a still-pending frame into a
    // duplicate delivery.
    for (;;) {
      const auto line = recv_line(subs[0].fd, subs[0].buf);
      ASSERT_TRUE(line.has_value()) << "canary lost the stream";
      const auto p = frame_period(*line);
      ASSERT_TRUE(p.has_value()) << *line;
      subs[0].seen.push_back(*p);
      if (*p == last_period) break;
    }

    // Churn in a late joiner with a random resume point; the replay must
    // bridge it to the live stream.
    if (rng() % 2 == 0 || subs.size() < 3) {
      add_sub(rng() % (last_period + 1));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // Every survivor owes a gapless (from, final] — replayed epochs
  // seamlessly followed by live pushes, unaffected by the killed peers.
  for (std::size_t i = 0; i < subs.size(); ++i) {
    SCOPED_TRACE("subscriber " + std::to_string(i));
    FeedSub& s = subs[i];
    while (s.seen.size() < last_period - s.from) {
      const auto line = recv_line(s.fd, s.buf);
      ASSERT_TRUE(line.has_value()) << "stream ended " << s.seen.size()
                                    << " frames into (" << s.from << ", "
                                    << last_period << "]";
      const auto p = frame_period(*line);
      ASSERT_TRUE(p.has_value()) << *line;
      s.seen.push_back(*p);
    }
    ASSERT_EQ(s.seen.size(), last_period - s.from);
    for (std::size_t k = 0; k < s.seen.size(); ++k) {
      ASSERT_EQ(s.seen[k], s.from + 1 + k) << "gap or duplicate in the stream";
    }
  }

  // The reactor noticed every yanked subscriber by now or will on the
  // next fan-out; nudge it with one more frame and converge the gauge.
  hub.publish("bcast new-period period=" + std::to_string(last_period + 1) +
                  " bundles=",
              last_period + 1);
  const auto deadline = std::chrono::steady_clock::now() + kDeadline;
  while (h.reactor->stats().subscribers != subs.size()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "subscriber gauge stuck at " << h.reactor->stats().subscribers
        << ", want " << subs.size() << " (killed " << killed << ")";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto stats = h.reactor->stats();
  EXPECT_GE(stats.feed_replayed, 1u);

  for (FeedSub& s : subs) ::close(s.fd);
  ::close(control);

  // The cluster itself stayed healthy under the churn: the rebooted
  // follower re-seeds and converges to the primary's epoch.
  EXPECT_TRUE(cluster.wait_converged(std::chrono::milliseconds(20000)));
}

TEST(SimFeed, ChurnAndKillMidBroadcastUnderLossyLinks) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_feed_churn(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace dfky::sim
