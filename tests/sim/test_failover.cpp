// Seeded self-healing-cluster workloads (DESIGN.md Sect. 14) over the
// symmetric failover simulator. Every test sweeps DFKY_SIM_SEEDS seeds
// (default 5; CI sanitizer sweeps run 20) and reports the failing seed via
// SCOPED_TRACE. The invariants, per seed:
//
//   * SIGKILLing the primary auto-promotes a follower within the election
//     timeout and loses ZERO acked mutations — in-process requests are
//     synchronous, so the surviving state must match the acked count
//     exactly;
//   * a partitioned primary loses its lease and NACKs (fail-stop) BEFORE
//     any successor is elected — at no point do two nodes ack writes;
//   * a revived zombie primary is fenced with a distinct stale-term NACK,
//     never silently commits, and re-seeds over the wire to a WAL
//     byte-identical with the new primary's;
//   * a partition landing anywhere inside the new-period barrier leaves
//     every node on ONE epoch once the cluster heals — acked barriers
//     survive, un-acked ones either never happened or roll forward under
//     the new term.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "daemon/protocol.h"
#include "sim/sim_cluster.h"
#include "store/store.h"

namespace dfky::sim {
namespace {

using daemon::Response;

std::size_t sweep_seeds() {
  if (const char* env = std::getenv("DFKY_SIM_SEEDS")) {
    const auto n = daemon::parse_u64(env);
    if (n && *n > 0) return static_cast<std::size_t>(*n);
  }
  return 5;
}

constexpr auto kElectBudget = std::chrono::seconds(20);
constexpr auto kConvergeBudget = std::chrono::seconds(20);

Response ok(SimNode& node, const std::string& line) {
  const auto raw = node.request(line);
  EXPECT_TRUE(raw.has_value()) << line << " on a dead node";
  if (!raw) return Response{};
  const auto r = daemon::parse_response(*raw);
  EXPECT_TRUE(r.has_value()) << line << " -> " << *raw;
  if (!r) return Response{};
  EXPECT_TRUE(r->ok) << line << " -> " << *raw;
  return *r;
}

/// A request that must NOT ack; returns the daemon's error text.
std::string expect_nack(SimNode& node, const std::string& line) {
  const auto raw = node.request(line);
  EXPECT_TRUE(raw.has_value()) << line << " on a dead node";
  if (!raw) return "";
  const auto r = daemon::parse_response(*raw);
  EXPECT_TRUE(r.has_value()) << line << " -> " << *raw;
  if (!r) return "";
  EXPECT_FALSE(r->ok) << line << " unexpectedly acked: " << *raw;
  return r->error;
}

/// `ops` acked add-users against node `i`; returns how many acked (which
/// must be all of them unless the caller said failures are expected).
std::size_t add_users(SimFailoverCluster& c, std::size_t i, std::size_t ops) {
  for (std::size_t n = 0; n < ops; ++n) ok(c.node(i), "add-user");
  return ops;
}

std::uint64_t field_u64(const Response& r, const std::string& key) {
  return *daemon::parse_u64(r.fields.at(key));
}

/// All shard periods of `node` equal; returns that one epoch.
std::uint64_t one_epoch(SimNode& node) {
  const Response st = ok(node, "status");
  const std::string periods = st.fields.at("periods");
  std::set<std::string> distinct;
  std::size_t from = 0;
  while (from <= periods.size()) {
    const std::size_t comma = periods.find(',', from);
    distinct.insert(periods.substr(
        from, comma == std::string::npos ? std::string::npos : comma - from));
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  EXPECT_EQ(distinct.size(), 1u) << "mixed epochs: " << periods;
  return field_u64(st, "period");
}

/// Durable WALs of `a` and `b` are byte-identical, shard by shard.
void expect_byte_identical(SimNode& a, SimNode& b, std::size_t shards) {
  MemFileIo da = a.durable_disk();
  MemFileIo db = b.durable_disk();
  for (std::size_t k = 0; k < shards; ++k) {
    const std::string dir = "store/" + shard_dir_name(k);
    const WalInspection wa = inspect_store_wal(da, dir);
    const WalInspection wb = inspect_store_wal(db, dir);
    ASSERT_TRUE(wa.ok);
    ASSERT_TRUE(wb.ok);
    EXPECT_EQ(wa.generation, wb.generation) << "shard " << k;
    EXPECT_EQ(wa.records, wb.records) << "shard " << k;
    EXPECT_EQ(wa.chain_head_hex, wb.chain_head_hex) << "shard " << k;
    EXPECT_EQ(wa.frames, wb.frames) << "shard " << k;
  }
}

// ---- workloads -----------------------------------------------------------------

TEST(SimFailover, KillPrimaryAutoPromotesWithoutAckedLoss) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimFailoverCluster c(/*shards=*/2, /*nodes=*/3, seed);
    const std::size_t acked = add_users(c, 0, 10);

    c.kill(0);  // SIGKILL, mid-cluster; no manual promote follows
    const auto np = c.wait_for_primary(kElectBudget);
    ASSERT_TRUE(np.has_value()) << "no follower auto-promoted";
    ASSERT_NE(*np, 0u);

    // Requests are synchronous, so an ok response IS the full acked set:
    // the auto-promoted node must hold exactly the acked users (the armed
    // majority gate put every one of them on a quorum).
    const Response st = ok(c.node(*np), "status");
    EXPECT_EQ(field_u64(st, "active"), acked);
    EXPECT_GE(field_u64(st, "term"), 1u);  // promoted under a fresh term
    one_epoch(c.node(*np));

    // Writes flow again through the new primary, and the surviving
    // follower tails its stream.
    add_users(c, *np, 3);
    ASSERT_TRUE(c.wait_converged(*np, kConvergeBudget));
    EXPECT_EQ(c.writable_count(), 1u);
    for (std::size_t i = 1; i < c.nodes(); ++i) {
      if (i == *np) continue;
      expect_byte_identical(c.node(*np), c.node(i), c.shards());
    }
  }
}

TEST(SimFailover, PartitionedPrimaryFencesBeforeSuccessorServes) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimFailoverCluster c(/*shards=*/2, /*nodes=*/3, seed);
    const std::size_t acked = add_users(c, 0, 6);

    // Full partition of the primary. Its next write must NACK: the armed
    // gate cannot reach a majority and the lease expires — and because
    // lease_ms < the followers' hb_timeout_ms, this happens BEFORE any
    // follower can campaign. The NACK fail-stops the node.
    c.isolate(0, true);
    expect_nack(c.node(0), "add-user");
    EXPECT_FALSE(c.writable(0));

    // The majority side elects a successor and serves.
    const auto np = c.wait_for_primary(kElectBudget);
    ASSERT_TRUE(np.has_value());
    ASSERT_NE(*np, 0u);
    add_users(c, *np, 4);
    EXPECT_EQ(c.writable_count(), 1u);  // never two writable primaries

    // Heal; the fail-stopped ex-primary restarts as a follower (the
    // supervisor path after a fenced/fail-stop exit) and re-seeds —
    // including truncating the un-acked record its failed write may have
    // staged locally.
    c.isolate(0, false);
    c.kill(0);
    c.restart_follower(0, seed + 500);
    ASSERT_TRUE(c.wait_converged(*np, kConvergeBudget));
    EXPECT_EQ(field_u64(ok(c.node(0), "status"), "active"), acked + 4);
    expect_byte_identical(c.node(*np), c.node(0), c.shards());
    EXPECT_EQ(c.writable_count(), 1u);
  }
}

TEST(SimFailover, RevivedZombieIsFencedAndReseededByteIdentical) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimFailoverCluster c(/*shards=*/2, /*nodes=*/3, seed);
    const std::size_t shared = add_users(c, 0, 8);

    c.kill(0);
    const auto np = c.wait_for_primary(kElectBudget);
    ASSERT_TRUE(np.has_value());
    ASSERT_NE(*np, 0u);
    add_users(c, *np, 5);  // history the zombie never saw

    // The dead ex-primary reboots still believing it is the primary. Its
    // own armed sender hears the cluster's higher term on the first
    // exchange and fences it: the write NACKs with the DISTINCT
    // stale-term error, and nothing is silently committed.
    c.revive_as_primary(0, seed + 900);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    std::string err;
    while (true) {
      err = expect_nack(c.node(0), "add-user");
      if (err.rfind("stale-term", 0) == 0 ||
          std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      // Before the fence lands the write can also die on the expired
      // lease (a group-commit fail-stop) — equally un-acked; keep probing
      // until the fence itself is observable.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(err.rfind("stale-term", 0), 0u) << err;
    EXPECT_FALSE(c.writable(0));
    EXPECT_EQ(field_u64(ok(c.node(*np), "status"), "active"), shared + 5);

    // Fenced exit + follower restart: the new primary's sender walks the
    // zombie back past any forked suffix (repl-truncate) and re-seeds it
    // over the wire to a byte-identical WAL.
    c.kill(0);
    c.restart_follower(0, seed + 901);
    const bool conv = c.wait_converged(*np, kConvergeBudget);
    if (!conv) {
      for (std::size_t i = 0; i < c.nodes(); ++i) {
        if (!c.node(i).alive()) continue;
        fprintf(stderr, "node%zu repl-status: %s\n", i,
                c.node(i).request("repl-status").value_or("<dead>").c_str());
        fprintf(stderr, "node%zu health: %s\n", i,
                c.node(i).request("health").value_or("<dead>").c_str());
      }
    }
    ASSERT_TRUE(conv);
    const Response st = ok(c.node(0), "status");
    EXPECT_EQ(field_u64(st, "active"), shared + 5);
    EXPECT_EQ(field_u64(st, "term"),
              field_u64(ok(c.node(*np), "status"), "term"));
    expect_byte_identical(c.node(*np), c.node(0), c.shards());
    EXPECT_EQ(c.writable_count(), 1u);
  }
}

TEST(SimFailover, PartitionDuringBarrierLeavesSingleEpoch) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimFailoverCluster c(/*shards=*/3, /*nodes=*/3, seed);
    const std::size_t acked = add_users(c, 0, 6);

    // Cut the primary off at a seeded offset inside the barrier's window:
    // early cuts abort it on the prepare gate, late ones land mid-roll or
    // after the commit gate — every placement must end on one epoch.
    std::mt19937_64 rng(seed * 13 + 7);
    const auto cut_after = std::chrono::microseconds(rng() % 3000);
    std::thread cutter([&] {
      std::this_thread::sleep_for(cut_after);
      c.isolate(0, true);
    });
    const auto raw = c.node(0).request("new-period");
    cutter.join();
    ASSERT_TRUE(raw.has_value());
    const bool barrier_acked = daemon::parse_response(*raw)->ok;

    // However the barrier ended, the isolated primary can never ack
    // again. A cut that landed after the barrier's last follower sync
    // leaves it idle and still *believing* it is primary — which is fine
    // (it cannot know) — so force the observation: its next ack attempt
    // waits out the lease, NACKs, and fail-stops it. Then the majority
    // side heals itself.
    expect_nack(c.node(0), "add-user");
    EXPECT_FALSE(c.writable(0));
    const auto np = c.wait_for_primary(kElectBudget);
    ASSERT_TRUE(np.has_value());
    ASSERT_NE(*np, 0u);
    const std::uint64_t epoch = one_epoch(c.node(*np));
    if (barrier_acked) {
      EXPECT_GE(epoch, 1u);  // acked barriers survive
    }

    // Heal + supervisor restart of the ex-primary; whatever partial rolls
    // its WAL holds are truncated away by the re-seed. Every node ends on
    // the new primary's single epoch.
    c.isolate(0, false);
    c.kill(0);
    c.restart_follower(0, seed + 700);
    ASSERT_TRUE(c.wait_converged(*np, kConvergeBudget));
    add_users(c, *np, 1);  // the healed cluster still acks
    ASSERT_TRUE(c.wait_converged(*np, kConvergeBudget));
    for (std::size_t i = 0; i < c.nodes(); ++i) {
      if (i == *np) continue;
      EXPECT_EQ(one_epoch(c.node(i)), one_epoch(c.node(*np))) << "node " << i;
      expect_byte_identical(c.node(*np), c.node(i), c.shards());
    }
    const Response st = ok(c.node(*np), "status");
    EXPECT_EQ(field_u64(st, "active"), acked + 1);
    EXPECT_EQ(c.writable_count(), 1u);
  }
}

}  // namespace
}  // namespace dfky::sim
