// Seeded fault workloads over the in-process cluster simulator
// (DESIGN.md Sect. 12). Every test sweeps DFKY_SIM_SEEDS seeds (default 5;
// CI sanitizer sweeps run 20) and reports the failing seed via
// SCOPED_TRACE. The invariants, per seed:
//
//   * no acked mutation is lost by any single-node kill — an ack means
//     durable on the primary and on every live follower;
//   * the surviving replicas converge to one epoch, even when a primary
//     dies inside the cross-shard new-period barrier;
//   * a promoted follower serves the full acked history, and serves new
//     mutations with working keys.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "core/content.h"
#include "core/keyfile.h"
#include "daemon/protocol.h"
#include "rng/chacha_rng.h"
#include "serial/codec.h"
#include "sim/sim_cluster.h"

namespace dfky::sim {
namespace {

using daemon::Response;

std::size_t sweep_seeds() {
  if (const char* env = std::getenv("DFKY_SIM_SEEDS")) {
    const auto n = daemon::parse_u64(env);
    if (n && *n > 0) return static_cast<std::size_t>(*n);
  }
  return 5;
}

/// Sends `line` to `node` and requires an ok response.
Response ok(SimNode& node, const std::string& line) {
  const auto raw = node.request(line);
  EXPECT_TRUE(raw.has_value()) << line << " on a dead node";
  if (!raw) return Response{};
  const auto r = daemon::parse_response(*raw);
  EXPECT_TRUE(r.has_value()) << line << " -> " << *raw;
  if (!r) return Response{};
  EXPECT_TRUE(r->ok) << line << " -> " << *raw;
  return *r;
}

/// What the client was told is durable. Only acked operations are
/// recorded; an err response promises nothing.
struct Acked {
  std::vector<std::pair<std::uint64_t, std::string>> users;  // id, key hex
  std::set<std::uint64_t> revoked;
  std::uint64_t barriers = 0;
};

/// A seeded client load against the primary: adds, revocations (of a
/// random not-yet-revoked user) and explicit epoch barriers. Every op
/// here must ack. Each revoke is chased by a barrier so a saturated
/// shard's reactive per-shard reset can never leave the set on mixed
/// epochs — the workloads assert epoch uniformity at every quiescent
/// point.
void run_load(SimNode& prim, ChaChaRng& rng, std::size_t ops, Acked* acked) {
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t draw = rng.u64() % 10;
    if (draw < 7 || acked->users.size() <= acked->revoked.size()) {
      const Response r = ok(prim, "add-user");
      if (r.fields.contains("id")) {
        acked->users.emplace_back(*daemon::parse_u64(r.fields.at("id")),
                                  r.fields.at("key"));
      }
    } else if (draw < 8) {
      std::vector<std::uint64_t> pool;
      for (const auto& [id, key] : acked->users) {
        (void)key;
        if (!acked->revoked.contains(id)) pool.push_back(id);
      }
      const std::uint64_t victim = pool[rng.u64() % pool.size()];
      ok(prim, "revoke " + std::to_string(victim));
      acked->revoked.insert(victim);
      ok(prim, "new-period");
      ++acked->barriers;
    } else {
      ok(prim, "new-period");
      ++acked->barriers;
    }
  }
}

/// All shard periods of `node` equal; returns that one epoch.
std::uint64_t one_epoch(SimNode& node) {
  const Response st = ok(node, "status");
  const std::string periods = st.fields.at("periods");
  std::set<std::string> distinct;
  std::size_t from = 0;
  while (from <= periods.size()) {
    const std::size_t comma = periods.find(',', from);
    distinct.insert(periods.substr(
        from, comma == std::string::npos ? std::string::npos : comma - from));
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  EXPECT_EQ(distinct.size(), 1u) << "mixed epochs: " << periods;
  return *daemon::parse_u64(st.fields.at("period"));
}

/// The node accepts an add, and the key it issues opens a fresh broadcast
/// from the same node — the end-to-end liveness check for a (promoted)
/// primary.
void expect_serves(SimNode& node) {
  const Response added = ok(node, "add-user");
  const KeyFileData kf =
      decode_key_file(*daemon::hex_decode(added.fields.at("key")));
  const std::string shard = added.fields.at("shard");
  const Bytes payload = {0x42, 0x42, 0x42};
  const Response enc =
      ok(node, "encrypt " + daemon::hex_encode(payload) + " " + shard);
  const Bytes ct = *daemon::hex_decode(enc.fields.at("ct"));
  Reader r(ct);
  const ContentMessage msg = ContentMessage::deserialize(r, kf.sp.group);
  r.expect_end();
  EXPECT_EQ(open_content(kf.sp, kf.key, msg), payload);
}

/// The acked history as the survivor must serve it.
void expect_history(SimNode& node, const Acked& acked) {
  const Response st = ok(node, "status");
  EXPECT_EQ(st.fields.at("active"),
            std::to_string(acked.users.size() - acked.revoked.size()));
  EXPECT_EQ(st.fields.at("revoked"), std::to_string(acked.revoked.size()));
}

/// Reopens a durable disk image and counts users across shards — the
/// "what actually survives a power cut" check.
std::size_t durable_users(const SimNode& node) {
  MemFileIo disk = node.durable_disk();
  ChaChaRng rng(5);
  const std::vector<StateStore> stores = open_shard_set(disk, "store", rng);
  std::size_t users = 0;
  for (const StateStore& s : stores) users += s.manager().users().size();
  return users;
}

// ---- workloads -----------------------------------------------------------------

constexpr auto kConvergeBudget = std::chrono::seconds(20);

TEST(SimCluster, KillPrimaryPromotesWithoutLoss) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimCluster c(/*shards=*/2, /*followers=*/1, seed);
    ChaChaRng rng(seed * 7 + 1);
    Acked acked;
    run_load(c.primary(), rng, 20, &acked);

    c.kill_primary();
    const Response pr = ok(c.follower(0), "promote");
    EXPECT_EQ(pr.fields.at("role"), "primary");

    // Full acked history, one epoch, still serving, and all of it durable.
    expect_history(c.follower(0), acked);
    one_epoch(c.follower(0));
    expect_serves(c.follower(0));
    EXPECT_EQ(durable_users(c.follower(0)), acked.users.size() + 1);
  }
}

TEST(SimCluster, KillFollowerDegradesThenCatchesUp) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimCluster c(/*shards=*/2, /*followers=*/2, seed);
    ChaChaRng rng(seed * 7 + 2);
    Acked acked;
    run_load(c.primary(), rng, 8, &acked);

    c.kill_follower(1);
    // The primary keeps acking: the dead follower stops gating.
    run_load(c.primary(), rng, 8, &acked);

    c.restart_follower(1, seed + 500);
    ASSERT_TRUE(c.wait_converged(kConvergeBudget));
    for (std::size_t i = 0; i < c.followers(); ++i) {
      expect_history(c.follower(i), acked);
      EXPECT_EQ(one_epoch(c.follower(i)), one_epoch(c.primary()));
    }
  }
}

TEST(SimCluster, KillDuringBarrierLeavesOneEpoch) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimCluster c(/*shards=*/3, /*followers=*/1, seed);
    ChaChaRng rng(seed * 7 + 3);
    Acked acked;
    for (std::size_t i = 0; i < 8; ++i) {
      const Response r = ok(c.primary(), "add-user");
      acked.users.emplace_back(*daemon::parse_u64(r.fields.at("id")),
                               r.fields.at("key"));
    }

    // Arm a power cut inside the barrier's phase-2 window: each shard
    // costs one append and one fsync, so a seeded offset in
    // [0, 2*shards) tears the epoch mid-flight on most seeds (and lets
    // the barrier through clean on the rest — both must hold the
    // invariants).
    FilePlan plan = c.primary().disk().plan();
    plan.crash_at = c.primary().disk().fault_counters().mutating_ops +
                    rng.u64() % (2 * c.shards());
    c.primary().disk().set_plan(plan);

    const auto raw = c.primary().request("new-period");
    ASSERT_TRUE(raw.has_value());
    const auto resp = daemon::parse_response(*raw);
    ASSERT_TRUE(resp.has_value());
    const bool barrier_acked = resp->ok;

    c.kill_primary();
    ok(c.follower(0), "promote");

    // No acked mutation lost; one epoch on the survivor; if the barrier
    // was acked it must have survived too.
    expect_history(c.follower(0), acked);
    const std::uint64_t epoch = one_epoch(c.follower(0));
    if (barrier_acked) {
      EXPECT_GE(epoch, 1u);
    }
    expect_serves(c.follower(0));
    EXPECT_EQ(durable_users(c.follower(0)), acked.users.size() + 1);
  }
}

TEST(SimCluster, PartitionThenHealConverges) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimCluster c(/*shards=*/2, /*followers=*/1, seed);
    ChaChaRng rng(seed * 7 + 4);
    Acked acked;
    run_load(c.primary(), rng, 8, &acked);

    // Cut the link. The sender marks the follower dead on its next
    // roundtrip; the primary degrades to standalone acks.
    c.set_partitioned(0, true);
    run_load(c.primary(), rng, 8, &acked);

    // Heal. The sender reconnects on its own, resyncs from repl-status
    // and ships the gap.
    c.set_partitioned(0, false);
    ASSERT_TRUE(c.wait_converged(kConvergeBudget));
    expect_history(c.follower(0), acked);
    EXPECT_EQ(one_epoch(c.follower(0)), one_epoch(c.primary()));
    // Still a read-only replica after all that.
    const auto raw = c.follower(0).request("add-user");
    ASSERT_TRUE(raw.has_value());
    EXPECT_FALSE(daemon::parse_response(*raw)->ok);
  }
}

TEST(SimCluster, SlowFollowerConvergesByteIdentical) {
  for (std::uint64_t seed = 1; seed <= sweep_seeds(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    // A lossy, duplicating network: acks vanish (the sender must resync
    // and re-deliver — idempotent replay) and lines arrive twice.
    SimCluster c(/*shards=*/2, /*followers=*/2, seed,
                 LinkFaults{.ack_loss_per_mille = 200, .dup_per_mille = 200});
    ChaChaRng rng(seed * 7 + 5);
    Acked acked;
    run_load(c.primary(), rng, 25, &acked);

    ASSERT_TRUE(c.wait_converged(kConvergeBudget));
    // Converged replicas are byte-identical to the primary's durable WAL,
    // shard by shard: same chain head, same frames.
    MemFileIo pd = c.primary().durable_disk();
    for (std::size_t i = 0; i < c.followers(); ++i) {
      expect_history(c.follower(i), acked);
      MemFileIo fd = c.follower(i).durable_disk();
      for (std::size_t k = 0; k < c.shards(); ++k) {
        const std::string dir = "store/" + shard_dir_name(k);
        const WalInspection wp = inspect_store_wal(pd, dir);
        const WalInspection wf = inspect_store_wal(fd, dir);
        ASSERT_TRUE(wp.ok);
        ASSERT_TRUE(wf.ok);
        EXPECT_EQ(wf.generation, wp.generation);
        EXPECT_EQ(wf.records, wp.records);
        EXPECT_EQ(wf.chain_head_hex, wp.chain_head_hex);
        EXPECT_EQ(wf.frames, wp.frames);
      }
    }
  }
}

}  // namespace
}  // namespace dfky::sim
