// Health verdicts and request traces driven through the deterministic
// cluster simulator (DESIGN.md Sect. 13): the `health` verb must report
// `ok` on a converged cluster, `degraded` with a dead follower or on a
// read-only replica, and `fail` once a shard is poisoned; the SimTrace
// suite holds the span-sum acceptance test (spans of a traced add-user
// tile and sum to the client-observed latency) and the slow-log capture
// of an fsync-stalled mutation.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "daemon/protocol.h"
#include "obs/trace.h"
#include "sim/sim_cluster.h"

namespace dfky::sim {
namespace {

using daemon::Response;

/// Sends `line` to `node` and requires an ok response.
Response ok(SimNode& node, const std::string& line) {
  const auto raw = node.request(line);
  EXPECT_TRUE(raw.has_value()) << line << " on a dead node";
  if (!raw) return Response{};
  const auto r = daemon::parse_response(*raw);
  EXPECT_TRUE(r.has_value()) << line << " -> " << *raw;
  if (!r) return Response{};
  EXPECT_TRUE(r->ok) << line << " -> " << *raw;
  return *r;
}

constexpr auto kConvergeBudget = std::chrono::seconds(20);

TEST(SimHealth, ConvergedClusterReportsOk) {
  SimCluster c(/*shards=*/2, /*followers=*/1, /*seed=*/1);
  ok(c.primary(), "add-user");
  ok(c.primary(), "add-user");
  ASSERT_TRUE(c.wait_converged(kConvergeBudget));

  const Response h = ok(c.primary(), "health");
  EXPECT_EQ(h.fields.at("verdict"), "ok");
  EXPECT_EQ(h.fields.at("role"), "primary");
  EXPECT_EQ(h.fields.at("shards"), "2");
  EXPECT_EQ(h.fields.at("poisoned"), "0,0");
  EXPECT_EQ(h.fields.at("followers_live"), "1/1");
  EXPECT_EQ(h.fields.at("lag_records"), "0");
  EXPECT_EQ(h.fields.at("reasons"), "none");

  // A replica is healthy but not fully serving: degraded, read-only.
  const Response fh = ok(c.follower(0), "health");
  EXPECT_EQ(fh.fields.at("verdict"), "degraded");
  EXPECT_EQ(fh.fields.at("role"), "follower");
  EXPECT_EQ(fh.fields.at("reasons"), "follower-read-only");
}

TEST(SimHealth, DeadFollowerDegradesThePrimary) {
  SimCluster c(/*shards=*/2, /*followers=*/1, /*seed=*/2);
  ok(c.primary(), "add-user");
  ASSERT_TRUE(c.wait_converged(kConvergeBudget));

  c.kill_follower(0);
  // The sender discovers the death while gating this ack; once the ack
  // is back, the follower is marked dead and stops gating.
  ok(c.primary(), "add-user");

  const Response h = ok(c.primary(), "health");
  EXPECT_EQ(h.fields.at("verdict"), "degraded");
  EXPECT_EQ(h.fields.at("followers_live"), "0/1");
  EXPECT_NE(h.fields.at("reasons").find("follower-dead:follower0"),
            std::string::npos)
      << h.fields.at("reasons");

  // Reviving the follower restores the verdict.
  c.restart_follower(0, /*seed=*/502);
  ASSERT_TRUE(c.wait_converged(kConvergeBudget));
  const Response h2 = ok(c.primary(), "health");
  EXPECT_EQ(h2.fields.at("verdict"), "ok");
  EXPECT_EQ(h2.fields.at("followers_live"), "1/1");
}

TEST(SimHealth, PoisonedShardFails) {
  SimCluster c(/*shards=*/2, /*followers=*/1, /*seed=*/3);
  ok(c.primary(), "add-user");

  // Arm a crash point on the very next mutating disk op: the committer's
  // sync fails, the shard is poisoned and the router fail-stops, but the
  // node object stays queryable (the sim's fatal hook does not exit).
  FilePlan plan = c.primary().disk().plan();
  plan.crash_at = c.primary().disk().fault_counters().mutating_ops;
  c.primary().disk().set_plan(plan);

  const auto raw = c.primary().request("add-user");
  ASSERT_TRUE(raw.has_value());
  const auto resp = daemon::parse_response(*raw);
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok) << "armed crash did not fail the mutation";

  const Response h = ok(c.primary(), "health");
  EXPECT_EQ(h.fields.at("verdict"), "fail");
  EXPECT_NE(h.fields.at("poisoned").find('1'), std::string::npos);
  EXPECT_NE(h.fields.at("reasons").find("poisoned"), std::string::npos)
      << h.fields.at("reasons");
}

#if DFKY_OBS_ENABLED

/// The acceptance test (ISSUE 7): an add-user against a 2-shard
/// primary+follower cluster yields a trace whose spans cover
/// accept -> parse -> route -> queue_wait -> wal_append -> fsync ->
/// repl_ack -> respond with monotone non-overlapping timestamps summing
/// (within 5%) to the client-observed latency. Spans tile by
/// construction, so the sum equals the traced total exactly; the 5%
/// budget covers the request()-wrapper overhead outside the trace. A few
/// attempts absorb scheduler noise.
TEST(SimTrace, SpanSumMatchesClientObservedLatency) {
  obs::trace_reset();
  obs::set_tracing(true);
  SimCluster c(/*shards=*/2, /*followers=*/1, /*seed=*/4);

  // Pipelined warm-up: concurrent in-flight add-users, as the pipelined
  // client mode drives them, so the measured request runs on warm paths.
  {
    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
      clients.emplace_back([&c] {
        for (int i = 0; i < 4; ++i) ok(c.primary(), "add-user");
      });
    }
    for (std::thread& t : clients) t.join();
  }

  const std::vector<obs::SpanKind> expected = {
      obs::SpanKind::kAccept,    obs::SpanKind::kParse,
      obs::SpanKind::kRoute,     obs::SpanKind::kQueueWait,
      obs::SpanKind::kWalAppend, obs::SpanKind::kFsync,
      obs::SpanKind::kReplAck,   obs::SpanKind::kRespond};

  bool matched = false;
  for (int attempt = 0; attempt < 10 && !matched; ++attempt) {
    const std::uint64_t t0 = obs::TraceContext::now_ns();
    ok(c.primary(), "add-user");
    const std::uint64_t wall = obs::TraceContext::now_ns() - t0;

    // The measured request is the newest add-user trace in the ring.
    const std::vector<obs::TraceContext> traces = obs::recent_traces();
    ASSERT_FALSE(traces.empty());
    const obs::TraceContext* t = nullptr;
    for (const obs::TraceContext& cand : traces) {
      if (cand.verb == "add-user") t = &cand;
    }
    ASSERT_NE(t, nullptr);

    // Span taxonomy and ordering are deterministic; assert them on every
    // attempt (only the latency comparison is noise-sensitive).
    ASSERT_EQ(t->spans.size(), expected.size());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(t->spans[i].kind, expected[i]);
      ASSERT_LE(t->spans[i].start_ns, t->spans[i].end_ns);
      if (i > 0) {
        ASSERT_EQ(t->spans[i].start_ns, t->spans[i - 1].end_ns);
      }
      sum += t->spans[i].end_ns - t->spans[i].start_ns;
    }
    EXPECT_EQ(sum, t->total_ns);  // tiling: exact, not approximate

    ASSERT_LE(t->total_ns, wall);
    matched = wall - t->total_ns <= wall / 20;
  }
  EXPECT_TRUE(matched)
      << "trace total never came within 5% of the client-observed latency";
}

/// An fsync stalled past the slow threshold must land the mutation in the
/// slow-request log (the e2e script checks the same through a live daemon
/// via DFKYD_TEST_FSYNC_STALL_US).
TEST(SimTrace, SlowLogCapturesFsyncStalledMutation) {
  obs::trace_reset();
  obs::set_tracing(true);
  const std::uint64_t saved = obs::slow_threshold_ns();

  SimCluster c(/*shards=*/1, /*followers=*/0, /*seed=*/5);

  // Calibrate against an unstalled request so the threshold holds under
  // sanitizer slowdowns too: anything 4x the fast request is "slow", and
  // the armed stall clears the threshold by a further 4x.
  const std::uint64_t t0 = obs::TraceContext::now_ns();
  ok(c.primary(), "add-user");
  const std::uint64_t fast_ns =
      std::max<std::uint64_t>(obs::TraceContext::now_ns() - t0, 250 * 1000);
  const std::uint64_t threshold_ns = 4 * fast_ns;
  obs::set_slow_threshold_ns(threshold_ns);

  FilePlan plan = c.primary().disk().plan();
  plan.fsync_delay_ns = 4 * threshold_ns;
  c.primary().disk().set_plan(plan);
  ok(c.primary(), "add-user");

  const std::vector<obs::TraceContext> slow = obs::slow_traces();
  ASSERT_FALSE(slow.empty());
  // Slowest first: the stalled mutation leads, with the stall attributed
  // to its fsync span rather than smeared across the timeline.
  EXPECT_EQ(slow[0].verb, "add-user");
  EXPECT_GE(slow[0].total_ns, plan.fsync_delay_ns);
  std::uint64_t fsync_ns = 0;
  for (const obs::TraceSpan& sp : slow[0].spans) {
    if (sp.kind == obs::SpanKind::kFsync) fsync_ns += sp.end_ns - sp.start_ns;
  }
  EXPECT_GE(fsync_ns, plan.fsync_delay_ns);

  const std::string jsonl = obs::trace_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"slow_trace\""), std::string::npos);

  obs::set_slow_threshold_ns(saved);
  obs::trace_reset();
}

#endif  // DFKY_OBS_ENABLED

}  // namespace
}  // namespace dfky::sim
