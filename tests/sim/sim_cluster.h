// Deterministic in-process dfkyd cluster for fault testing (DESIGN.md
// Sect. 12).
//
// A SimCluster is one primary plus N followers, each a full SimNode — a
// MemFileIo "disk" behind a FaultyFileIo injector, a ShardRouter and a
// RequestHandler — joined by the REAL ReplicationSender over SimLinks
// that deliver protocol lines straight into the follower's handler. Every
// fault is drawn from a seeded PRG: link faults (lost acks, duplicated
// deliveries) per link, disk faults (crash points, torn appends) per
// node, so one seed names one fault schedule. The sender's threads are
// real, but every assertion is about converged end state — which the ack
// contract makes schedule-independent: a client ack means durable on the
// primary and on every live follower, no matter how the threads raced.
//
// Node death is a power cut, not a shutdown: kill() snapshots the durable
// view of the disk at the instant of death and discards everything the
// teardown would have flushed. restart() reboots from exactly that state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "daemon/daemon.h"
#include "daemon/failover.h"
#include "daemon/repl.h"
#include "daemon/shard.h"
#include "store/file_io.h"
#include "store/store.h"

namespace dfky::sim {

/// Per-link fault rates in parts per mille, drawn per roundtrip from the
/// link's own seeded PRG. An "ack loss" applies the request on the target
/// and then loses the response — the sender must resync and re-deliver,
/// exercising the follower's idempotent replay. A "dup" delivers the same
/// line twice back to back.
struct LinkFaults {
  std::uint32_t ack_loss_per_mille = 0;
  std::uint32_t dup_per_mille = 0;
};

/// One in-process dfkyd node.
class SimNode {
 public:
  /// Fresh primary: creates a `shards`-shard set on this node's disk.
  SimNode(std::string name, std::size_t shards, std::uint64_t seed);
  /// Replica bootstrap: clones `src`'s current files (sharing the stores'
  /// HMAC keys, so shipped frames verify) and opens as a follower.
  SimNode(std::string name, const SimNode& src, std::uint64_t seed);
  ~SimNode();

  SimNode(const SimNode&) = delete;
  SimNode& operator=(const SimNode&) = delete;

  const std::string& name() const { return name_; }
  bool alive() const { return alive_.load(); }

  /// One protocol roundtrip; nullopt when the node is dead. Thread-safe —
  /// in-flight requests hold the node alive until they return.
  std::optional<std::string> request(const std::string& line);

  /// Power cut. Waits out in-flight requests, then replaces the disk with
  /// its durable view as of the moment of death (teardown writes are
  /// discarded — a killed process flushes nothing).
  void kill();

  /// Reboots a killed node from its durable disk state. A follower reboot
  /// opens shards without epoch equalization, exactly like
  /// `dfkyd --follower`; a primary reboot runs laggard recovery.
  void restart(bool follower, std::uint64_t seed);

  /// The disk's fault injector (arm crash points via set_plan).
  FaultyFileIo& disk() { return *faulty_; }
  /// A copy of the durable view (what a crash right now would leave).
  MemFileIo durable_disk() const;

  /// Direct router access for state inspection. Only valid while alive.
  daemon::ShardRouter& router() { return *router_; }

 private:
  void open(bool create, std::size_t shards, bool follower,
            std::uint64_t seed);

  std::string name_;
  MemFileIo fs_;
  std::optional<FaultyFileIo> faulty_;
  /// request() shared, kill()/restart() exclusive: death drains in-flight
  /// requests instead of destroying the router under them.
  mutable std::shared_mutex life_mu_;
  std::atomic<bool> alive_{false};
  std::optional<daemon::ShardRouter> router_;
  std::optional<daemon::RequestHandler> handler_;
};

/// One primary, `followers` replicas, and the real ReplicationSender
/// wired over fault-injected in-process links.
class SimCluster {
 public:
  SimCluster(std::size_t shards, std::size_t followers, std::uint64_t seed,
             LinkFaults faults = {});
  ~SimCluster();

  SimNode& primary() { return *primary_; }
  SimNode& follower(std::size_t i) { return *followers_[i]; }
  std::size_t followers() const { return followers_.size(); }
  std::size_t shards() const { return shards_; }

  /// Cuts (true) or heals (false) the link to follower `i`. A cut link
  /// fails every roundtrip; the sender marks the follower dead and the
  /// primary degrades to standalone acks until the heal.
  void set_partitioned(std::size_t i, bool cut) {
    partitioned_[i]->store(cut);
  }

  /// Stops replication and power-cuts the primary (in that order — a dead
  /// primary ships nothing).
  void kill_primary();
  /// Power-cuts follower `i`; the sender discovers the death on its next
  /// roundtrip and stops gating acks on it.
  void kill_follower(std::size_t i) { followers_[i]->kill(); }
  /// Reboots follower `i` as a follower; the sender reconnects and ships
  /// the gap on its own.
  void restart_follower(std::size_t i, std::uint64_t seed) {
    followers_[i]->restart(/*follower=*/true, seed);
  }

  /// True once every LIVE follower acked the primary's current per-shard
  /// durable heads and its stores report the same positions. False on
  /// timeout.
  bool wait_converged(std::chrono::milliseconds timeout);

 private:
  std::unique_ptr<daemon::ReplLink> make_link(std::size_t i,
                                              std::uint64_t seed);

  std::size_t shards_;
  LinkFaults faults_;
  std::unique_ptr<SimNode> primary_;
  std::vector<std::unique_ptr<SimNode>> followers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> partitioned_;
  /// Reconnect counter per follower: each connection draws a fresh link
  /// fault stream.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> attempts_;
  /// shared_ptr: the router's committers borrow it through the post_sync
  /// gate, matching the daemon's ownership.
  std::shared_ptr<daemon::ReplicationSender> sender_;
};

/// Armed failover timings (real milliseconds — the lease and watchdog run
/// on wall clocks, so the sim keeps them small enough for a fast sweep but
/// generous enough that sanitizer slowdown or machine load can't starve a
/// healthy primary's sender past its own lease. lease_ms < hb_timeout_ms
/// preserves fence-before-successor.
struct SimTimings {
  int lease_ms = 800;
  int hb_interval_ms = 50;
  int hb_timeout_ms = 1200;
  int election_min_ms = 20;
  int election_max_ms = 120;
};

/// A symmetric self-healing cluster (DESIGN.md Sect. 14): every node can
/// hold the primary role. Node 0 starts as the primary with an ARMED
/// ReplicationSender (majority-ack gate + lease + idle heartbeats); every
/// other node starts as a follower running a FailoverWatchdog that
/// election-promotes it once the primary goes silent. A sender that hears
/// a stale-term NACK fences its router in place (the daemon additionally
/// exits; in-process, the fence is the part acks depend on). Links are
/// directional and cuttable per (from, to) pair, so asymmetric partitions
/// are expressible.
class SimFailoverCluster {
 public:
  SimFailoverCluster(std::size_t shards, std::size_t nodes,
                     std::uint64_t seed, SimTimings timings = {},
                     LinkFaults faults = {});
  ~SimFailoverCluster();

  SimNode& node(std::size_t i) { return members_[i]->node; }
  std::size_t nodes() const { return members_.size(); }
  std::size_t shards() const { return shards_; }

  /// Cuts (true) or heals (false) the directional link from -> to.
  void set_cut(std::size_t from, std::size_t to, bool cut);
  /// Cuts (or heals) every link touching `i` — a full one-node partition.
  void isolate(std::size_t i, bool cut);

  /// Stops node i's watchdog and sender, then power-cuts it.
  void kill(std::size_t i);
  /// Reboots a killed node as an armed follower (watchdog re-armed) — the
  /// supervisor restart after a crash or a fenced exit.
  void restart_follower(std::size_t i, std::uint64_t seed);
  /// Reboots a killed ex-primary as a ZOMBIE: it comes back believing it
  /// is still the primary (armed sender, no startup probe) and must be
  /// fenced by the cluster's higher term before it can ack anything.
  void revive_as_primary(std::size_t i, std::uint64_t seed);

  /// Node i is alive, holds the primary role, and is neither fenced nor
  /// fail-stopped — it would still try to ack writes.
  bool writable(std::size_t i);
  /// Count of writable nodes right now (the split-brain probe).
  std::size_t writable_count();
  /// Polls until at least one node is writable; returns the writable node
  /// with the highest term, or nullopt on timeout.
  std::optional<std::size_t> wait_for_primary(
      std::chrono::milliseconds timeout);
  /// Every LIVE node matches node `primary`'s per-shard generation, record
  /// count AND chain head (chain equality means byte-identical WALs).
  bool wait_converged(std::size_t primary, std::chrono::milliseconds timeout);

 private:
  struct Member {
    template <typename... Args>
    explicit Member(Args&&... args) : node(std::forward<Args>(args)...) {}
    SimNode node;
    /// Engage/stop guard, like the daemon's repl_mu_: the watchdog thread
    /// engages the sender on promotion while the driver tears it down.
    std::mutex repl_mu;
    std::shared_ptr<daemon::ReplicationSender> sender;
    std::unique_ptr<daemon::FailoverWatchdog> watchdog;
  };

  std::unique_ptr<daemon::ReplLink> make_link(std::size_t from,
                                              std::size_t to);
  std::vector<daemon::FollowerSpec> peer_specs(std::size_t i);
  void start_sender(std::size_t i);
  void stop_sender(std::size_t i);
  void arm_watchdog(std::size_t i);

  std::size_t shards_;
  std::uint64_t seed_;
  SimTimings timings_;
  LinkFaults faults_;
  std::vector<std::unique_ptr<Member>> members_;
  std::vector<std::unique_ptr<std::atomic<bool>>> cut_;  // N*N, from*N+to
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> attempts_;
};

}  // namespace dfky::sim
