#include "sim/sim_cluster.h"

#include <thread>
#include <utility>

#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky::sim {

namespace {

FilePlan fault_free(std::uint64_t seed) {
  FilePlan plan;
  plan.seed = seed;
  return plan;
}

}  // namespace

// ---- SimNode -------------------------------------------------------------------

SimNode::SimNode(std::string name, std::size_t shards, std::uint64_t seed)
    : name_(std::move(name)) {
  faulty_.emplace(fs_, fault_free(seed));
  open(/*create=*/true, shards, /*follower=*/false, seed);
}

SimNode::SimNode(std::string name, const SimNode& src, std::uint64_t seed)
    : name_(std::move(name)) {
  // A replica bootstraps from a disk image of the primary: the durable
  // view (crash() also drops the primary's LOCK ownership, which never
  // travels with a backup). Sharing the image shares the stores' HMAC
  // keys, so shipped frames chain-verify on this node.
  fs_ = src.fs_;
  fs_.crash();
  faulty_.emplace(fs_, fault_free(seed));
  open(/*create=*/false, 0, /*follower=*/true, seed);
}

SimNode::~SimNode() {
  std::unique_lock lk(life_mu_);
  alive_.store(false);
  handler_.reset();
  router_.reset();
}

void SimNode::open(bool create, std::size_t shards, bool follower,
                   std::uint64_t seed) {
  std::vector<StateStore> stores;
  if (create) {
    ChaChaRng rng(seed);
    const SystemParams sp = test::test_params(/*v=*/2, seed);
    std::vector<SecurityManager> managers;
    for (std::size_t i = 0; i < shards; ++i) managers.emplace_back(sp, rng);
    stores = create_shard_set(*faulty_, "store", std::move(managers), rng);
  } else if (follower) {
    // Like `dfkyd --follower`: no epoch equalization — rolling a laggard
    // forward writes local records, forking the stream this node is about
    // to receive.
    const std::size_t n = count_shards(*faulty_, "store");
    for (std::size_t i = 0; i < n; ++i) {
      stores.push_back(
          StateStore::open(*faulty_, "store/" + shard_dir_name(i)));
    }
  } else {
    ChaChaRng rng(seed ^ 0x9e3779b9ull);
    stores = open_shard_set(*faulty_, "store", rng);
  }
  router_.emplace(
      std::move(stores),
      [seed](std::size_t k) {
        return std::make_unique<ChaChaRng>(seed * 1000 + k);
      },
      std::function<void()>{}, follower);
  handler_.emplace(*router_);
  alive_.store(true);
}

std::optional<std::string> SimNode::request(const std::string& line) {
  std::shared_lock lk(life_mu_);
  if (!alive_.load()) return std::nullopt;
  return handler_->handle(line).response;
}

void SimNode::kill() {
  std::unique_lock lk(life_mu_);
  if (!alive_.exchange(false)) return;
  // The platter at the instant of death: everything not fsynced is gone.
  MemFileIo dead = fs_;
  dead.crash();
  // Disarm pending disk faults so the (discarded) teardown can't detonate
  // them inside a destructor.
  faulty_->set_plan(fault_free(1));
  handler_.reset();
  router_.reset();  // joins committers; their parting flushes die with fs_
  fs_ = dead;
}

void SimNode::restart(bool follower, std::uint64_t seed) {
  std::unique_lock lk(life_mu_);
  if (alive_.load()) return;
  faulty_->set_plan(fault_free(seed));
  open(/*create=*/false, 0, follower, seed);
}

MemFileIo SimNode::durable_disk() const {
  MemFileIo copy = fs_;
  copy.crash();
  return copy;
}

// ---- SimLink -------------------------------------------------------------------

namespace {

class SimLink final : public daemon::ReplLink {
 public:
  SimLink(SimNode& target, std::atomic<bool>& cut, LinkFaults faults,
          std::uint64_t seed)
      : target_(target), cut_(cut), faults_(faults), rng_(seed) {}

  std::optional<std::string> roundtrip(const std::string& line) override {
    if (cut_.load()) return std::nullopt;
    // Draw both faults up front so the PRG stream stays aligned whatever
    // the target does.
    const bool dup = rng_.u64() % 1000 < faults_.dup_per_mille;
    const bool lose_ack = rng_.u64() % 1000 < faults_.ack_loss_per_mille;
    auto resp = target_.request(line);
    if (!resp) return std::nullopt;
    if (dup) {
      // The network delivered the line twice; the target must treat the
      // replay as idempotent, and the duplicate's response is the one the
      // sender sees.
      auto again = target_.request(line);
      if (!again) return std::nullopt;
      resp = std::move(again);
    }
    if (lose_ack) return std::nullopt;  // applied, but the sender never hears
    return resp;
  }

 private:
  SimNode& target_;
  std::atomic<bool>& cut_;
  LinkFaults faults_;
  ChaChaRng rng_;
};

}  // namespace

// ---- SimCluster ----------------------------------------------------------------

SimCluster::SimCluster(std::size_t shards, std::size_t followers,
                       std::uint64_t seed, LinkFaults faults)
    : shards_(shards),
      faults_(faults),
      primary_(std::make_unique<SimNode>("primary", shards, seed)) {
  std::vector<daemon::FollowerSpec> specs;
  for (std::size_t i = 0; i < followers; ++i) {
    followers_.push_back(std::make_unique<SimNode>(
        "follower" + std::to_string(i), *primary_, seed + 101 + i));
    partitioned_.push_back(std::make_unique<std::atomic<bool>>(false));
    attempts_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    specs.push_back(daemon::FollowerSpec{
        followers_[i]->name(), [this, i, seed] {
          if (!followers_[i]->alive()) {
            return std::unique_ptr<daemon::ReplLink>{};
          }
          // A fresh connection draws a fresh fault stream; replaying the
          // connection's faults verbatim could fail every reconnect the
          // same way forever.
          const std::uint64_t attempt = attempts_[i]->fetch_add(1);
          return make_link(i, seed + 7919 * (attempt + 1) + i);
        }});
  }
  sender_ = std::make_shared<daemon::ReplicationSender>(
      primary_->router(), std::move(specs),
      daemon::ReplOptions{.max_batch_bytes = std::size_t{1} << 20,
                          .backoff_min_ms = 1,
                          .backoff_max_ms = 10,
                          .lease_ms = 0,
                          .hb_interval_ms = 0,
                          .on_stale_term = {}});
  primary_->router().attach_replication(sender_);
}

SimCluster::~SimCluster() {
  if (sender_) {
    sender_->stop();
    if (primary_->alive()) primary_->router().attach_replication(nullptr);
    sender_.reset();
  }
}

std::unique_ptr<daemon::ReplLink> SimCluster::make_link(std::size_t i,
                                                        std::uint64_t seed) {
  return std::make_unique<SimLink>(*followers_[i], *partitioned_[i], faults_,
                                   seed);
}

void SimCluster::kill_primary() {
  if (sender_) {
    sender_->stop();
    primary_->router().attach_replication(nullptr);
    sender_.reset();
  }
  primary_->kill();
}

bool SimCluster::wait_converged(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto head = primary_->router().repl_positions();
    bool all = true;
    for (const auto& f : followers_) {
      if (!f->alive()) continue;
      const auto pos = f->router().repl_positions();
      for (std::size_t k = 0; k < head.size(); ++k) {
        if (pos[k].generation != head[k].generation ||
            pos[k].records != head[k].records) {
          all = false;
        }
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---- SimFailoverCluster --------------------------------------------------------

SimFailoverCluster::SimFailoverCluster(std::size_t shards, std::size_t nodes,
                                       std::uint64_t seed, SimTimings timings,
                                       LinkFaults faults)
    : shards_(shards), seed_(seed), timings_(timings), faults_(faults) {
  members_.push_back(std::make_unique<Member>("node0", shards, seed));
  for (std::size_t i = 1; i < nodes; ++i) {
    members_.push_back(std::make_unique<Member>(
        "node" + std::to_string(i), members_[0]->node, seed + 101 + i));
  }
  for (std::size_t i = 0; i < nodes * nodes; ++i) {
    cut_.push_back(std::make_unique<std::atomic<bool>>(false));
    attempts_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  start_sender(0);
  for (std::size_t i = 1; i < nodes; ++i) arm_watchdog(i);
}

SimFailoverCluster::~SimFailoverCluster() {
  // Watchdogs first: after their threads join, no promotion can engage a
  // new sender under the teardown.
  for (auto& m : members_) {
    if (m->watchdog) m->watchdog->stop();
  }
  for (std::size_t i = 0; i < members_.size(); ++i) stop_sender(i);
}

std::unique_ptr<daemon::ReplLink> SimFailoverCluster::make_link(
    std::size_t from, std::size_t to) {
  Member& target = *members_[to];
  if (!target.node.alive()) return nullptr;
  const std::size_t e = from * members_.size() + to;
  // A fresh connection draws a fresh fault stream (see SimCluster).
  const std::uint64_t attempt = attempts_[e]->fetch_add(1);
  return std::make_unique<SimLink>(target.node, *cut_[e], faults_,
                                   seed_ + 7919 * (attempt + 1) + e);
}

std::vector<daemon::FollowerSpec> SimFailoverCluster::peer_specs(
    std::size_t i) {
  std::vector<daemon::FollowerSpec> specs;
  for (std::size_t j = 0; j < members_.size(); ++j) {
    if (j == i) continue;
    specs.push_back(daemon::FollowerSpec{
        members_[j]->node.name(), [this, i, j] { return make_link(i, j); }});
  }
  return specs;
}

void SimFailoverCluster::start_sender(std::size_t i) {
  Member& m = *members_[i];
  std::lock_guard lk(m.repl_mu);
  if (m.sender) return;
  daemon::ReplOptions ro;
  ro.max_batch_bytes = std::size_t{1} << 20;
  ro.backoff_min_ms = 1;
  ro.backoff_max_ms = 10;
  ro.lease_ms = timings_.lease_ms;
  ro.hb_interval_ms = timings_.hb_interval_ms;
  ro.on_stale_term = [&m](std::uint64_t t) {
    // The daemon also fail-stops and exits here; in-process, fencing the
    // router is the part the ack contract depends on.
    m.node.router().fence(t);
  };
  m.sender = std::make_shared<daemon::ReplicationSender>(
      m.node.router(), peer_specs(i), std::move(ro));
  m.node.router().attach_replication(m.sender);
}

void SimFailoverCluster::stop_sender(std::size_t i) {
  Member& m = *members_[i];
  std::lock_guard lk(m.repl_mu);
  if (!m.sender) return;
  if (m.node.alive()) m.node.router().attach_replication(nullptr);
  m.sender->stop();
  m.sender.reset();
}

void SimFailoverCluster::arm_watchdog(std::size_t i) {
  Member& m = *members_[i];
  daemon::FailoverOptions fo;
  fo.self = m.node.name();
  fo.peers = peer_specs(i);
  fo.hb_timeout_ms = timings_.hb_timeout_ms;
  fo.election_min_ms = timings_.election_min_ms;
  fo.election_max_ms = timings_.election_max_ms;
  fo.backoff_max_ms = 200;
  fo.seed = seed_ * 31 + i;
  fo.on_promoted = [this, i](std::uint64_t) { start_sender(i); };
  m.watchdog = std::make_unique<daemon::FailoverWatchdog>(m.node.router(),
                                                          std::move(fo));
}

void SimFailoverCluster::set_cut(std::size_t from, std::size_t to, bool cut) {
  cut_[from * members_.size() + to]->store(cut);
}

void SimFailoverCluster::isolate(std::size_t i, bool cut) {
  for (std::size_t j = 0; j < members_.size(); ++j) {
    if (j == i) continue;
    set_cut(i, j, cut);
    set_cut(j, i, cut);
  }
}

void SimFailoverCluster::kill(std::size_t i) {
  Member& m = *members_[i];
  if (m.watchdog) {
    m.watchdog->stop();
    m.watchdog.reset();
  }
  stop_sender(i);
  m.node.kill();
}

void SimFailoverCluster::restart_follower(std::size_t i, std::uint64_t seed) {
  members_[i]->node.restart(/*follower=*/true, seed);
  arm_watchdog(i);
}

void SimFailoverCluster::revive_as_primary(std::size_t i,
                                           std::uint64_t seed) {
  members_[i]->node.restart(/*follower=*/false, seed);
  start_sender(i);
}

bool SimFailoverCluster::writable(std::size_t i) {
  Member& m = *members_[i];
  if (!m.node.alive()) return false;
  daemon::ShardRouter& r = m.node.router();
  return !r.follower() && !r.fenced() && !r.fatal();
}

std::size_t SimFailoverCluster::writable_count() {
  std::size_t n = 0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (writable(i)) ++n;
  }
  return n;
}

std::optional<std::size_t> SimFailoverCluster::wait_for_primary(
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (!writable(i)) continue;
      if (!best ||
          members_[i]->node.router().term() >
              members_[*best]->node.router().term()) {
        best = i;
      }
    }
    if (best) return best;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

bool SimFailoverCluster::wait_converged(std::size_t primary,
                                        std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto head = members_[primary]->node.router().repl_positions();
    bool all = true;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i == primary || !members_[i]->node.alive()) continue;
      const auto pos = members_[i]->node.router().repl_positions();
      for (std::size_t k = 0; k < head.size(); ++k) {
        if (pos[k].generation != head[k].generation ||
            pos[k].records != head[k].records ||
            pos[k].chain_head != head[k].chain_head) {
          all = false;
        }
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace dfky::sim
