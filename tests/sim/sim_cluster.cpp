#include "sim/sim_cluster.h"

#include <thread>
#include <utility>

#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky::sim {

namespace {

FilePlan fault_free(std::uint64_t seed) {
  FilePlan plan;
  plan.seed = seed;
  return plan;
}

}  // namespace

// ---- SimNode -------------------------------------------------------------------

SimNode::SimNode(std::string name, std::size_t shards, std::uint64_t seed)
    : name_(std::move(name)) {
  faulty_.emplace(fs_, fault_free(seed));
  open(/*create=*/true, shards, /*follower=*/false, seed);
}

SimNode::SimNode(std::string name, const SimNode& src, std::uint64_t seed)
    : name_(std::move(name)) {
  // A replica bootstraps from a disk image of the primary: the durable
  // view (crash() also drops the primary's LOCK ownership, which never
  // travels with a backup). Sharing the image shares the stores' HMAC
  // keys, so shipped frames chain-verify on this node.
  fs_ = src.fs_;
  fs_.crash();
  faulty_.emplace(fs_, fault_free(seed));
  open(/*create=*/false, 0, /*follower=*/true, seed);
}

SimNode::~SimNode() {
  std::unique_lock lk(life_mu_);
  alive_.store(false);
  handler_.reset();
  router_.reset();
}

void SimNode::open(bool create, std::size_t shards, bool follower,
                   std::uint64_t seed) {
  std::vector<StateStore> stores;
  if (create) {
    ChaChaRng rng(seed);
    const SystemParams sp = test::test_params(/*v=*/2, seed);
    std::vector<SecurityManager> managers;
    for (std::size_t i = 0; i < shards; ++i) managers.emplace_back(sp, rng);
    stores = create_shard_set(*faulty_, "store", std::move(managers), rng);
  } else if (follower) {
    // Like `dfkyd --follower`: no epoch equalization — rolling a laggard
    // forward writes local records, forking the stream this node is about
    // to receive.
    const std::size_t n = count_shards(*faulty_, "store");
    for (std::size_t i = 0; i < n; ++i) {
      stores.push_back(
          StateStore::open(*faulty_, "store/" + shard_dir_name(i)));
    }
  } else {
    ChaChaRng rng(seed ^ 0x9e3779b9ull);
    stores = open_shard_set(*faulty_, "store", rng);
  }
  router_.emplace(
      std::move(stores),
      [seed](std::size_t k) {
        return std::make_unique<ChaChaRng>(seed * 1000 + k);
      },
      std::function<void()>{}, follower);
  handler_.emplace(*router_);
  alive_.store(true);
}

std::optional<std::string> SimNode::request(const std::string& line) {
  std::shared_lock lk(life_mu_);
  if (!alive_.load()) return std::nullopt;
  return handler_->handle(line).response;
}

void SimNode::kill() {
  std::unique_lock lk(life_mu_);
  if (!alive_.exchange(false)) return;
  // The platter at the instant of death: everything not fsynced is gone.
  MemFileIo dead = fs_;
  dead.crash();
  // Disarm pending disk faults so the (discarded) teardown can't detonate
  // them inside a destructor.
  faulty_->set_plan(fault_free(1));
  handler_.reset();
  router_.reset();  // joins committers; their parting flushes die with fs_
  fs_ = dead;
}

void SimNode::restart(bool follower, std::uint64_t seed) {
  std::unique_lock lk(life_mu_);
  if (alive_.load()) return;
  faulty_->set_plan(fault_free(seed));
  open(/*create=*/false, 0, follower, seed);
}

MemFileIo SimNode::durable_disk() const {
  MemFileIo copy = fs_;
  copy.crash();
  return copy;
}

// ---- SimLink -------------------------------------------------------------------

namespace {

class SimLink final : public daemon::ReplLink {
 public:
  SimLink(SimNode& target, std::atomic<bool>& cut, LinkFaults faults,
          std::uint64_t seed)
      : target_(target), cut_(cut), faults_(faults), rng_(seed) {}

  std::optional<std::string> roundtrip(const std::string& line) override {
    if (cut_.load()) return std::nullopt;
    // Draw both faults up front so the PRG stream stays aligned whatever
    // the target does.
    const bool dup = rng_.u64() % 1000 < faults_.dup_per_mille;
    const bool lose_ack = rng_.u64() % 1000 < faults_.ack_loss_per_mille;
    auto resp = target_.request(line);
    if (!resp) return std::nullopt;
    if (dup) {
      // The network delivered the line twice; the target must treat the
      // replay as idempotent, and the duplicate's response is the one the
      // sender sees.
      auto again = target_.request(line);
      if (!again) return std::nullopt;
      resp = std::move(again);
    }
    if (lose_ack) return std::nullopt;  // applied, but the sender never hears
    return resp;
  }

 private:
  SimNode& target_;
  std::atomic<bool>& cut_;
  LinkFaults faults_;
  ChaChaRng rng_;
};

}  // namespace

// ---- SimCluster ----------------------------------------------------------------

SimCluster::SimCluster(std::size_t shards, std::size_t followers,
                       std::uint64_t seed, LinkFaults faults)
    : shards_(shards),
      faults_(faults),
      primary_(std::make_unique<SimNode>("primary", shards, seed)) {
  std::vector<daemon::FollowerSpec> specs;
  for (std::size_t i = 0; i < followers; ++i) {
    followers_.push_back(std::make_unique<SimNode>(
        "follower" + std::to_string(i), *primary_, seed + 101 + i));
    partitioned_.push_back(std::make_unique<std::atomic<bool>>(false));
    attempts_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    specs.push_back(daemon::FollowerSpec{
        followers_[i]->name(), [this, i, seed] {
          if (!followers_[i]->alive()) {
            return std::unique_ptr<daemon::ReplLink>{};
          }
          // A fresh connection draws a fresh fault stream; replaying the
          // connection's faults verbatim could fail every reconnect the
          // same way forever.
          const std::uint64_t attempt = attempts_[i]->fetch_add(1);
          return make_link(i, seed + 7919 * (attempt + 1) + i);
        }});
  }
  sender_.emplace(primary_->router(), std::move(specs),
                  daemon::ReplOptions{.max_batch_bytes = std::size_t{1} << 20,
                                      .backoff_min_ms = 1,
                                      .backoff_max_ms = 10});
  primary_->router().attach_replication(&*sender_);
}

SimCluster::~SimCluster() {
  if (sender_) {
    sender_->stop();
    if (primary_->alive()) primary_->router().attach_replication(nullptr);
    sender_.reset();
  }
}

std::unique_ptr<daemon::ReplLink> SimCluster::make_link(std::size_t i,
                                                        std::uint64_t seed) {
  return std::make_unique<SimLink>(*followers_[i], *partitioned_[i], faults_,
                                   seed);
}

void SimCluster::kill_primary() {
  if (sender_) {
    sender_->stop();
    primary_->router().attach_replication(nullptr);
    sender_.reset();
  }
  primary_->kill();
}

bool SimCluster::wait_converged(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto head = primary_->router().repl_positions();
    bool all = true;
    for (const auto& f : followers_) {
      if (!f->alive()) continue;
      const auto pos = f->router().repl_positions();
      for (std::size_t k = 0; k < head.size(); ++k) {
        if (pos[k].generation != head[k].generation ||
            pos[k].records != head[k].records) {
          all = false;
        }
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace dfky::sim
