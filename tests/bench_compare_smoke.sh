#!/usr/bin/env bash
# Exercises tools/bench_compare end to end: a bench run compared against its
# own output passes (ratio 1.0), a doctored baseline trips the regression
# gate, and a fresh bench with no baseline is reported but never fails.
#
#   tests/bench_compare_smoke.sh <bench-binary> <bench_compare-binary>
set -euo pipefail

bench="$(readlink -f "$1")"
compare="$(readlink -f "$2")"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
cd "$work"

fail() { echo "bench_compare_smoke: $1" >&2; exit 1; }

mkdir baseline current
(cd baseline && DFKY_BENCH_SMOKE=1 "$bench" > /dev/null)
cp baseline/BENCH_*.json current/

# Identical runs: every ratio is exactly 1.0 — must pass any threshold.
"$compare" baseline current --threshold 1.01 > same.txt \
  || fail "identical runs flagged as regression"
grep -q 'regression(s)' same.txt || fail "no summary line"
grep -q ' 0 regression' same.txt || fail "identical runs counted regressions"

# Shrink every baseline median 10x: the current run now looks 10x slower.
sed -E 's/"median_ns":([0-9]+)/"median_ns":1/g' baseline/BENCH_*.json \
  > doctored.json
mkdir slow-base
mv doctored.json "slow-base/$(basename baseline/BENCH_*.json)"
if "$compare" slow-base current --threshold 1.5 > slow.txt; then
  fail "10x regression not caught"
fi
grep -q 'REGRESSION' slow.txt || fail "regression rows not marked"

# A generous threshold lets the same gap through.
"$compare" slow-base current --threshold 1e9 > /dev/null \
  || fail "huge threshold still failed"

# No baseline for this bench: skip, never fail.
mkdir empty-base
"$compare" empty-base current > fresh.txt \
  || fail "missing baseline treated as regression"
grep -q ' 0 compared' fresh.txt || fail "fresh bench compared against nothing?"

# Usage and IO errors exit 2.
set +e
"$compare" baseline 2>/dev/null; [ $? = 2 ] || fail "missing arg exit code"
"$compare" baseline /nonexistent 2>/dev/null; [ $? = 2 ] \
  || fail "bad dir exit code"
"$compare" baseline current --threshold nope 2>/dev/null; [ $? = 2 ] \
  || fail "bad threshold exit code"
set -e

echo "bench_compare_smoke: ok"
