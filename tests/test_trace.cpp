// Request-tracing layer (obs/trace.h — DESIGN.md Sect. 13): span tiling
// arithmetic, the lock-striped ring, the per-verb slow-request log and the
// JSONL export. TraceConcurrency is the suite tools/sanitize_check.sh
// re-runs under TSan. Everything here is wrapped in DFKY_OBS_ENABLED so
// the same TU still builds (empty) in a -DDFKY_OBS=OFF tree;
// test_trace_off.cpp covers the stub side.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

#if DFKY_OBS_ENABLED

namespace dfky {
namespace {

/// Every test starts from an empty ring/slow log and the default
/// threshold, and restores both — gtest_discover_tests runs one process
/// per test, but sweeps with --gtest_filter must not couple tests either.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::trace_reset();
    obs::set_tracing(true);
    saved_threshold_ = obs::slow_threshold_ns();
  }
  void TearDown() override {
    obs::set_slow_threshold_ns(saved_threshold_);
    obs::set_tracing(true);
    obs::trace_reset();
  }

  std::uint64_t saved_threshold_ = 0;
};

/// A synthetic completed trace: `spans` as (kind, duration) pairs laid out
/// back to back from a fixed origin, total already stamped.
obs::TraceContext make_trace(
    std::uint64_t id, const std::string& verb,
    const std::vector<std::pair<obs::SpanKind, std::uint64_t>>& spans) {
  obs::TraceContext t;
  t.id = id;
  t.verb = verb;
  t.start_ns = 1000;
  t.cursor_ns = t.start_ns;
  for (const auto& [kind, dur] : spans) t.mark_at(kind, t.cursor_ns + dur);
  t.total_ns = t.cursor_ns - t.start_ns;
  return t;
}

using TraceLifecycle = TraceTest;

TEST_F(TraceLifecycle, SpansTileAndSumToTotal) {
  {
    obs::ScopedTrace trace;
    ASSERT_TRUE(trace.active());
    trace.set_verb("add-user");
    ASSERT_NE(obs::current_trace(), nullptr);
    obs::trace_mark(obs::SpanKind::kAccept);
    obs::trace_mark(obs::SpanKind::kParse);
    obs::current_trace()->mark(obs::SpanKind::kRoute);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    obs::trace_mark(obs::SpanKind::kFsync);
  }  // destructor closes `respond` and files the trace
  EXPECT_EQ(obs::current_trace(), nullptr);

  const std::vector<obs::TraceContext> traces = obs::recent_traces();
  ASSERT_EQ(traces.size(), 1u);
  const obs::TraceContext& t = traces[0];
  EXPECT_EQ(t.verb, "add-user");
  ASSERT_EQ(t.spans.size(), 5u);
  EXPECT_EQ(t.spans.back().kind, obs::SpanKind::kRespond);

  // Tiling: first span starts at the trace start, every span starts where
  // the previous ended, and the durations sum exactly to the total.
  EXPECT_EQ(t.spans.front().start_ns, t.start_ns);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    ASSERT_LE(t.spans[i].start_ns, t.spans[i].end_ns);
    if (i > 0) {
      EXPECT_EQ(t.spans[i].start_ns, t.spans[i - 1].end_ns);
    }
    sum += t.spans[i].end_ns - t.spans[i].start_ns;
  }
  EXPECT_EQ(sum, t.total_ns);
  EXPECT_GE(t.total_ns, 1000000u);  // the 1ms sleep is inside some span
}

TEST_F(TraceLifecycle, DisabledTracingInstallsNothing) {
  obs::set_tracing(false);
  {
    obs::ScopedTrace trace;
    EXPECT_FALSE(trace.active());
    EXPECT_EQ(obs::current_trace(), nullptr);
    trace.set_verb("status");  // must be safe on an inactive trace
    trace.set_outcome(false);
  }
  EXPECT_TRUE(obs::recent_traces().empty());
}

TEST_F(TraceLifecycle, MarkAtClampsTimestampsFromThePast) {
  obs::TraceContext t;
  t.start_ns = 500;
  t.cursor_ns = 500;
  t.mark_at(obs::SpanKind::kAccept, 700);
  t.mark_at(obs::SpanKind::kParse, 600);  // before the cursor: clamped
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_EQ(t.spans[1].start_ns, 700u);
  EXPECT_EQ(t.spans[1].end_ns, 700u);  // zero-length, never overlapping
  EXPECT_EQ(t.cursor_ns, 700u);
}

TEST_F(TraceLifecycle, RingKeepsTheNewestTraces) {
  const std::size_t cap = obs::kTraceRingStripes * obs::kTraceRingPerStripe;
  for (std::uint64_t id = 1; id <= cap + 100; ++id) {
    obs::trace_record(
        make_trace(id, "add-user", {{obs::SpanKind::kRespond, 10}}));
  }
  const std::vector<obs::TraceContext> all = obs::recent_traces();
  EXPECT_EQ(all.size(), cap);
  // Overwrite evicts oldest-per-stripe, so every survivor is newer than
  // the 100 evicted ids.
  for (const obs::TraceContext& t : all) EXPECT_GT(t.id, 100u);

  const std::vector<obs::TraceContext> newest = obs::recent_traces(10);
  ASSERT_EQ(newest.size(), 10u);
  EXPECT_EQ(newest.back().id, cap + 100);
  EXPECT_EQ(newest.front().id, cap + 91);
  for (std::size_t i = 1; i < newest.size(); ++i) {
    EXPECT_LT(newest[i - 1].id, newest[i].id);
  }
}

using TraceSlow = TraceTest;

TEST_F(TraceSlow, KeepsTheKSlowestPerVerbAboveTheThreshold) {
  obs::set_slow_threshold_ns(1000);
  // 12 slow add-users (totals 1000..12000) + one fast one + a slow revoke.
  for (std::uint64_t i = 1; i <= 12; ++i) {
    obs::trace_record(
        make_trace(i, "add-user", {{obs::SpanKind::kRespond, i * 1000}}));
  }
  obs::trace_record(
      make_trace(90, "add-user", {{obs::SpanKind::kRespond, 999}}));
  obs::trace_record(
      make_trace(91, "revoke", {{obs::SpanKind::kRespond, 5000}}));

  const std::vector<obs::TraceContext> slow = obs::slow_traces();
  // add-user keeps its K slowest (12..5), revoke keeps its one.
  ASSERT_EQ(slow.size(), obs::kSlowTracesPerVerb + 1);
  EXPECT_EQ(slow.front().total_ns, 12000u);
  for (std::size_t i = 1; i < slow.size(); ++i) {
    EXPECT_GE(slow[i - 1].total_ns, slow[i].total_ns);
  }
  std::size_t add_users = 0;
  for (const obs::TraceContext& t : slow) {
    if (t.verb == "add-user") {
      ++add_users;
      EXPECT_GE(t.total_ns, 5000u) << "a non-slowest trace survived";
    }
  }
  EXPECT_EQ(add_users, obs::kSlowTracesPerVerb);
}

TEST_F(TraceSlow, ZeroThresholdDisablesTheSlowLog) {
  obs::set_slow_threshold_ns(0);
  obs::trace_record(make_trace(
      1, "add-user", {{obs::SpanKind::kRespond, 1000000000ull}}));
  EXPECT_TRUE(obs::slow_traces().empty());
  EXPECT_EQ(obs::recent_traces().size(), 1u);  // the ring still fills
}

using TraceJson = TraceTest;

TEST_F(TraceJson, GoldenLine) {
  const obs::TraceContext t =
      make_trace(7, "add-user", {{obs::SpanKind::kAccept, 10},
                                 {obs::SpanKind::kParse, 20},
                                 {obs::SpanKind::kRespond, 30}});
  EXPECT_EQ(obs::trace_json_line(t),
            "{\"kind\":\"trace\",\"id\":7,\"verb\":\"add-user\","
            "\"outcome\":\"ok\",\"total_ns\":60,\"spans\":["
            "{\"span\":\"accept\",\"start_ns\":0,\"dur_ns\":10},"
            "{\"span\":\"parse\",\"start_ns\":10,\"dur_ns\":20},"
            "{\"span\":\"respond\",\"start_ns\":30,\"dur_ns\":30}]}");
  EXPECT_EQ(obs::trace_json_line(t, "slow_trace").substr(0, 21),
            "{\"kind\":\"slow_trace\",");
}

TEST_F(TraceJson, JsonlRoundTripsThroughTheParser) {
  obs::set_slow_threshold_ns(100);
  obs::trace_record(make_trace(1, "revoke", {{obs::SpanKind::kRoute, 40},
                                             {obs::SpanKind::kRespond, 160}}));
  const std::string jsonl = obs::trace_jsonl();
  std::vector<json::Value> lines;
  std::size_t from = 0;
  while (from < jsonl.size()) {
    const std::size_t nl = jsonl.find('\n', from);
    lines.push_back(json::Value::parse(jsonl.substr(from, nl - from)));
    from = nl + 1;
  }
  // Meta, the ring copy, and the slow-log copy of the same trace.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("kind")->as_string(), "trace_meta");
  EXPECT_EQ(lines[0].find("ring")->as_number(), 1.0);
  EXPECT_EQ(lines[0].find("slow")->as_number(), 1.0);
  EXPECT_EQ(lines[0].find("slow_threshold_ns")->as_number(), 100.0);
  EXPECT_EQ(lines[1].find("kind")->as_string(), "trace");
  EXPECT_EQ(lines[1].find("verb")->as_string(), "revoke");
  EXPECT_EQ(lines[1].find("total_ns")->as_number(), 200.0);
  EXPECT_EQ(lines[1].find("spans")->as_array().size(), 2u);
  EXPECT_EQ(lines[2].find("kind")->as_string(), "slow_trace");
  EXPECT_EQ(lines[2].find("id")->as_number(), 1.0);
}

using TraceConcurrency = TraceTest;

TEST_F(TraceConcurrency, ParallelTracesAndReadersStayConsistent) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kThreads; ++w) {
    writers.emplace_back([w] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        obs::ScopedTrace trace;
        trace.set_verb(w % 2 == 0 ? "add-user" : "status");
        obs::trace_mark(obs::SpanKind::kAccept);
        obs::trace_mark(obs::SpanKind::kParse);
      }
    });
  }
  // Concurrent readers exercise every export path while the ring churns.
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 2; ++r) {
    readers.emplace_back([] {
      for (std::size_t i = 0; i < 50; ++i) {
        (void)obs::trace_jsonl(16);
        (void)obs::recent_traces(8);
        (void)obs::slow_traces();
      }
    });
  }
  for (std::thread& t : writers) t.join();
  for (std::thread& t : readers) t.join();

  const std::size_t cap = obs::kTraceRingStripes * obs::kTraceRingPerStripe;
  const std::vector<obs::TraceContext> all = obs::recent_traces();
  EXPECT_EQ(all.size(), std::min(cap, kThreads * kPerThread));
  for (const obs::TraceContext& t : all) {
    EXPECT_GE(t.spans.size(), 3u);  // accept, parse, respond
    EXPECT_EQ(t.spans.back().kind, obs::SpanKind::kRespond);
  }
}

}  // namespace
}  // namespace dfky

#endif  // DFKY_OBS_ENABLED
