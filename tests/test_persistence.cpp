// Manager state persistence: a restored manager is operationally identical
// to the original (keys verify, revocations continue, periods roll, tracing
// works) and malformed state is rejected.
#include <gtest/gtest.h>

#include "core/manager.h"
#include "core/receiver.h"
#include "rng/chacha_rng.h"
#include "test_util.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

namespace dfky {
namespace {

TEST(Persistence, RoundTripPreservesPublicState) {
  ChaChaRng rng(12001);
  SecurityManager mgr(test::test_params(4), rng);
  const auto u = mgr.add_user(rng);
  mgr.remove_user(mgr.add_user(rng).id, rng);

  const Bytes state = mgr.save_state();
  SecurityManager restored = SecurityManager::restore_state(state);

  EXPECT_EQ(restored.period(), mgr.period());
  EXPECT_EQ(restored.saturation_level(), mgr.saturation_level());
  EXPECT_EQ(restored.saturation_limit(), mgr.saturation_limit());
  EXPECT_EQ(restored.users().size(), mgr.users().size());
  EXPECT_TRUE(restored.public_key().y == mgr.public_key().y);
  EXPECT_TRUE(restored.verification_key() == mgr.verification_key());
  // Old user keys still decrypt broadcasts under the restored manager.
  const Gelt m = restored.params().group.random_element(rng);
  const Ciphertext ct =
      encrypt(restored.params(), restored.public_key(), m, rng);
  EXPECT_EQ(decrypt(restored.params(), u.key, ct), m);
}

TEST(Persistence, RestoredManagerContinuesOperating) {
  ChaChaRng rng(12002);
  SecurityManager mgr(test::test_params(2), rng);
  const auto survivor = mgr.add_user(rng);
  Receiver receiver(mgr.params(), survivor.key, mgr.verification_key());

  SecurityManager restored = SecurityManager::restore_state(mgr.save_state());
  // New users, revocations and a period change on the restored instance.
  for (int i = 0; i < 3; ++i) {
    const auto victim = restored.add_user(rng);
    const auto bundle = restored.remove_user(victim.id, rng);
    if (bundle) receiver.apply_reset(*bundle);
  }
  EXPECT_GE(restored.period(), 1u);
  const Gelt m = restored.params().group.random_element(rng);
  const Ciphertext ct =
      encrypt(restored.params(), restored.public_key(), m, rng);
  EXPECT_EQ(receiver.decrypt(ct), m);
}

TEST(Persistence, RestoredManagerTraces) {
  ChaChaRng rng(12003);
  SecurityManager mgr(test::test_params(4), rng);
  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 8; ++i) users.push_back(mgr.add_user(rng));

  SecurityManager restored = SecurityManager::restore_state(mgr.save_state());
  std::vector<UserKey> keys = {users[2].key, users[6].key};
  const Representation delta = build_pirate_representation(
      restored.params(), restored.public_key(), keys, rng);
  const TraceResult result = trace_nonblackbox(
      restored.params(), restored.public_key(), delta, restored.users());
  ASSERT_EQ(result.traitors.size(), 2u);
}

TEST(Persistence, UserUniquenessSurvivesRestore) {
  ChaChaRng rng(12004);
  SecurityManager mgr(test::test_params(3), rng);
  const auto u = mgr.add_user(rng);
  SecurityManager restored = SecurityManager::restore_state(mgr.save_state());
  EXPECT_THROW(restored.add_user_with_value(u.key.x), ContractError);
}

TEST(Persistence, RejectsCorruptedState) {
  ChaChaRng rng(12005);
  SecurityManager mgr(test::test_params(3), rng);
  mgr.add_user(rng);
  Bytes state = mgr.save_state();

  // Bad magic.
  Bytes bad = state;
  bad[0] ^= 0xff;
  EXPECT_THROW(SecurityManager::restore_state(bad), DecodeError);

  // Truncation at various points must throw, never crash.
  for (std::size_t cut : {std::size_t{5}, std::size_t{20}, std::size_t{60},
                          state.size() - 1}) {
    EXPECT_THROW(
        SecurityManager::restore_state(BytesView(state.data(), cut)), Error)
        << "cut at " << cut;
  }

  // Trailing garbage.
  Bytes extended = state;
  extended.push_back(0);
  EXPECT_THROW(SecurityManager::restore_state(extended), DecodeError);
}

TEST(Persistence, RejectsTamperedSignKey) {
  ChaChaRng rng(12006);
  SecurityManager mgr(test::test_params(2), rng);
  Bytes state = mgr.save_state();
  // Flipping a bit mid-state corrupts some field; restore must either throw
  // or produce a manager that fails consistency — we only require no crash
  // and (almost always) a DecodeError. Flip several positions.
  std::size_t threw = 0;
  for (std::size_t pos = 8; pos < state.size(); pos += 37) {
    Bytes bad = state;
    bad[pos] ^= 0x01;
    try {
      SecurityManager restored = SecurityManager::restore_state(bad);
      (void)restored;
    } catch (const Error&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0u);
}

// Fuzz-style corruption sweep: restore_state must reject mangled input with a
// clean Error (no crash, no UB — this file is re-run under ASan/UBSan by
// tools/sanitize_check.sh) and must never accept a damaged state silently.

TEST(PersistenceFuzz, EveryTruncationIsRejectedCleanly) {
  ChaChaRng rng(12007);
  SecurityManager mgr(test::test_params(2), rng);
  mgr.add_user(rng);
  mgr.remove_user(mgr.add_user(rng).id, rng);
  const Bytes state = mgr.save_state();
  ASSERT_GT(state.size(), 64u);
  for (std::size_t cut = 0; cut < state.size(); ++cut) {
    EXPECT_THROW(
        SecurityManager::restore_state(BytesView(state.data(), cut)), Error)
        << "truncation to " << cut << " bytes was accepted";
  }
}

TEST(PersistenceFuzz, SingleBitFlipsAreContained) {
  ChaChaRng rng(12008);
  SecurityManager mgr(test::test_params(2), rng);
  const auto u = mgr.add_user(rng);
  const Bytes state = mgr.save_state();

  std::size_t threw = 0, accepted = 0;
  for (int iter = 0; iter < 512; ++iter) {
    const std::size_t pos = rng.u64() % state.size();
    const byte mask = static_cast<byte>(1u << (rng.u64() % 8));
    Bytes bad = state;
    bad[pos] ^= mask;
    try {
      // A flip in a don't-care position may still restore; the result must
      // then be a coherent manager (save/operate without crashing).
      SecurityManager restored = SecurityManager::restore_state(bad);
      (void)restored.save_state();
      ++accepted;
    } catch (const Error&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw + accepted, 512u);
  // The format is length-prefixed and checked throughout: the overwhelming
  // majority of flips must be detected.
  EXPECT_GT(threw, 256u);

  // Sanity: the pristine state still restores and serves the old key.
  SecurityManager restored = SecurityManager::restore_state(state);
  const Gelt m = restored.params().group.random_element(rng);
  const Ciphertext ct =
      encrypt(restored.params(), restored.public_key(), m, rng);
  EXPECT_EQ(decrypt(restored.params(), u.key, ct), m);
}

}  // namespace
}  // namespace dfky
