// The dfkyd building blocks, socket-free: the line protocol's strict
// parsers, the group-commit queue's durability/batching/error semantics,
// and RequestHandler driven line-by-line against an in-memory store.
#include <gtest/gtest.h>

#include <atomic>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/content.h"
#include "core/keyfile.h"
#include "daemon/daemon.h"
#include "daemon/group_commit.h"
#include "daemon/protocol.h"
#include "rng/chacha_rng.h"
#include "serial/codec.h"
#include "store/store.h"
#include "test_util.h"

namespace dfky::daemon {
namespace {

// ---- protocol helpers ---------------------------------------------------------

TEST(Protocol, ParseU64AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("8"), 8u);
  EXPECT_EQ(parse_u64("007"), 7u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(Protocol, ParseU64RejectsEverythingStoulWouldLetThrough) {
  // std::stoul accepts all of these (wrapping, trimming or truncating);
  // the daemon and the CLI must not.
  EXPECT_FALSE(parse_u64("-5"));     // stoull wraps to 2^64-5
  EXPECT_FALSE(parse_u64("+5"));
  EXPECT_FALSE(parse_u64(" 8"));
  EXPECT_FALSE(parse_u64("8 "));
  EXPECT_FALSE(parse_u64("8junk"));  // stoull stops at the junk
  EXPECT_FALSE(parse_u64("0x10"));
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("banana"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));      // 2^64
  EXPECT_FALSE(parse_u64("99999999999999999999999"));   // > 20 digits
}

TEST(Protocol, HexRoundTrips) {
  const Bytes data = {0x00, 0x0f, 0xf0, 0xff, 0x5a};
  EXPECT_EQ(hex_encode(data), "000ff0ff5a");
  EXPECT_EQ(hex_decode("000ff0ff5a"), data);
  EXPECT_EQ(hex_decode("000FF0FF5A"), data);  // uppercase tolerated
  EXPECT_EQ(hex_decode(""), Bytes{});
  EXPECT_FALSE(hex_decode("abc"));   // odd length
  EXPECT_FALSE(hex_decode("zz"));
}

TEST(Protocol, SplitTokensCollapsesRuns) {
  EXPECT_EQ(split_tokens("  add-user   1  2 "),
            (std::vector<std::string>{"add-user", "1", "2"}));
  EXPECT_TRUE(split_tokens("   ").empty());
}

TEST(Protocol, ResponsesRoundTrip) {
  EXPECT_EQ(ok_response(), "ok");
  EXPECT_EQ(ok_response({{"id", "3"}, {"key", "ab"}}), "ok id=3 key=ab");
  EXPECT_EQ(err_response("no\nnewlines\rhere"), "err no newlines here");

  const auto ok = parse_response("ok id=3 key=ab");
  ASSERT_TRUE(ok && ok->ok);
  EXPECT_EQ(ok->fields.at("id"), "3");
  EXPECT_EQ(ok->fields.at("key"), "ab");

  const auto err = parse_response("err user 7 is unknown");
  ASSERT_TRUE(err);
  EXPECT_FALSE(err->ok);
  EXPECT_EQ(err->error, "user 7 is unknown");

  EXPECT_FALSE(parse_response("okay"));
  EXPECT_FALSE(parse_response("ok bare-token"));
  EXPECT_FALSE(parse_response("ok =v"));
  EXPECT_FALSE(parse_response("errx"));
}

// ---- group commit -------------------------------------------------------------

struct DaemonStore {
  MemFileIo fs;
  std::optional<StateStore> store;
  std::shared_mutex state_mu;

  explicit DaemonStore(std::size_t v = 2) {
    ChaChaRng rng(31);
    SecurityManager mgr(test::test_params(v, /*seed=*/31), rng);
    store.emplace(StateStore::create(fs, "store", std::move(mgr), rng));
  }
};

TEST(GroupCommit, ConcurrentMutationsAreAllDurableWhenAcked) {
  DaemonStore d;
  constexpr std::size_t kThreads = 4, kPerThread = 8;
  {
    GroupCommit commits(*d.store, d.state_mu);
    ChaChaRng rng(1);
    std::mutex rng_mu;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          commits.run([&] {
            std::lock_guard lk(rng_mu);
            d.store->add_user(rng);
          });
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(commits.committed(), kThreads * kPerThread);
    EXPECT_GE(commits.batches(), 1u);
    EXPECT_LE(commits.batches(), commits.committed());
  }
  // Every acked mutation survives a power cut.
  MemFileIo cut = d.fs;
  cut.crash();
  StateStore recovered = StateStore::open(cut, "store");
  EXPECT_EQ(recovered.manager().users().size(), kThreads * kPerThread);
}

TEST(GroupCommit, OpErrorReachesOnlyItsSubmitter) {
  DaemonStore d;
  GroupCommit commits(*d.store, d.state_mu);
  ChaChaRng rng(2);
  // A bad op (unknown user) must throw at its own run() call...
  const std::uint64_t bogus[] = {404};
  EXPECT_THROW(commits.run([&] { d.store->remove_users(bogus, rng); }),
               ContractError);
  // ...and leave the queue fully usable for the next, valid op.
  commits.run([&] { d.store->add_user(rng); });
  EXPECT_EQ(d.store->manager().users().size(), 1u);
}

TEST(GroupCommit, SyncFailureNacksTheBatchAndFailsStop) {
  // A batch whose covering fsync fails must NOT keep serving: its ops are
  // live in the in-memory manager, and a later successful flush (or the
  // destructor's set_batching(false)) would silently commit mutations the
  // clients were told had failed.
  const auto make_store = [](FileIo& io) {
    ChaChaRng rng(31);
    SecurityManager mgr(test::test_params(2, /*seed=*/31), rng);
    return StateStore::create(io, "store", std::move(mgr), rng);
  };

  // Dry run: the batch's fsync is the last mutating I/O op.
  std::uint64_t total_ops = 0;
  {
    MemFileIo fs;
    FaultyFileIo io(fs, FilePlan{});
    StateStore store = make_store(io);
    std::shared_mutex mu;
    GroupCommit commits(store, mu);
    ChaChaRng rng(1);
    commits.run([&] { store.add_user(rng); });
    total_ops = io.fault_counters().mutating_ops;
  }
  ASSERT_GT(total_ops, 0u);

  MemFileIo fs;
  FilePlan plan;
  plan.seed = 77;
  plan.crash_at = total_ops - 1;
  FaultyFileIo io(fs, plan);
  StateStore store = make_store(io);
  std::shared_mutex mu;
  std::atomic<int> fatal_calls{0};
  Bytes wal_after_failure;
  {
    GroupCommit commits(store, mu, [&] { fatal_calls.fetch_add(1); });
    ChaChaRng rng(1);
    // The sync failure is rethrown at the submitter: a NACK.
    EXPECT_THROW(commits.run([&] { store.add_user(rng); }), CrashPoint);
    EXPECT_TRUE(commits.fatal());
    EXPECT_EQ(fatal_calls.load(), 1);
    EXPECT_TRUE(store.poisoned());
    EXPECT_EQ(commits.committed(), 0u);
    wal_after_failure = fs.read("store/wal.0");
    // The queue refuses further work instead of batching on a dead store.
    EXPECT_THROW(commits.run([&] { store.add_user(rng); }), ContractError);
  }
  // Destruction (the daemon's shutdown path) did not flush the NACKed
  // frames behind the clients' backs.
  EXPECT_EQ(fs.read("store/wal.0"), wal_after_failure);
  EXPECT_EQ(fatal_calls.load(), 1);
}

TEST(GroupCommit, DestructorReturnsStoreToImmediateMode) {
  DaemonStore d;
  {
    GroupCommit commits(*d.store, d.state_mu);
    EXPECT_TRUE(d.store->batching());
  }
  EXPECT_FALSE(d.store->batching());
  EXPECT_EQ(d.store->unsynced_records(), 0u);
}

// ---- request handler ----------------------------------------------------------

struct HandlerFixture : DaemonStore {
  ChaChaRng rng{77};
  GroupCommit commits{*store, state_mu};
  RequestHandler handler{*store, commits, state_mu, rng};

  Response ok(const std::string& line) {
    const RequestHandler::Result res = handler.handle(line);
    const auto r = parse_response(res.response);
    EXPECT_TRUE(r) << res.response;
    EXPECT_TRUE(r->ok) << res.response;
    return *r;
  }
  std::string err(const std::string& line) {
    const RequestHandler::Result res = handler.handle(line);
    const auto r = parse_response(res.response);
    EXPECT_TRUE(r && !r->ok) << res.response;
    return r ? r->error : "";
  }
};

TEST(RequestHandler, StatusReportsTheStore) {
  HandlerFixture f;
  const Response r = f.ok("status");
  EXPECT_EQ(r.fields.at("period"), "0");
  EXPECT_EQ(r.fields.at("active"), "0");
  EXPECT_EQ(r.fields.at("revoked"), "0");
  EXPECT_EQ(r.fields.at("saturation"), "0/2");
  EXPECT_EQ(r.fields.at("generation"), "0");
}

TEST(RequestHandler, AddUserIssuesAWorkingKeyFile) {
  HandlerFixture f;
  const Response added = f.ok("add-user");
  EXPECT_EQ(added.fields.at("id"), "0");
  const auto key_bytes = hex_decode(added.fields.at("key"));
  ASSERT_TRUE(key_bytes);
  const KeyFileData kf = decode_key_file(*key_bytes);

  // The daemon-issued key opens daemon-encrypted content.
  const Bytes payload = {'h', 'i', ' ', 'd', 'f', 'k', 'y'};
  const Response enc = f.ok("encrypt " + hex_encode(payload));
  EXPECT_EQ(enc.fields.at("bytes"), "7");
  const auto ct_bytes = hex_decode(enc.fields.at("ct"));
  ASSERT_TRUE(ct_bytes);
  Reader r(*ct_bytes);
  const ContentMessage msg = ContentMessage::deserialize(r, kf.sp.group);
  r.expect_end();
  EXPECT_EQ(open_content(kf.sp, kf.key, msg), payload);
}

TEST(RequestHandler, RevokeCutsTheKeyOffImmediately) {
  HandlerFixture f;
  const Response added = f.ok("add-user");
  f.ok("add-user");  // a second user keeps the system non-trivial
  const KeyFileData kf =
      decode_key_file(*hex_decode(added.fields.at("key")));

  const Response rev = f.ok("revoke " + added.fields.at("id"));
  EXPECT_EQ(rev.fields.at("saturation"), "1/2");
  // No period roll was needed, so no bundles — the public-key edit alone
  // already excludes the revoked key from new broadcasts.
  EXPECT_EQ(rev.fields.at("bundles"), "");

  const Response enc = f.ok("encrypt 00ff");
  const Bytes ct = *hex_decode(enc.fields.at("ct"));
  Reader cr(ct);
  const ContentMessage msg = ContentMessage::deserialize(cr, kf.sp.group);
  EXPECT_THROW(open_content(kf.sp, kf.key, msg), Error);

  const Response st = f.ok("status");
  EXPECT_EQ(st.fields.at("active"), "1");
  EXPECT_EQ(st.fields.at("revoked"), "1");
}

TEST(RequestHandler, SaturatingRevokeRollsThePeriodAndReturnsBundles) {
  HandlerFixture f;
  const Response added = f.ok("add-user");
  f.ok("add-user");
  f.ok("add-user");
  const KeyFileData kf =
      decode_key_file(*hex_decode(added.fields.at("key")));

  // v = 2, so revoking three users forces a New-period mid-batch; its
  // signed bundle comes back comma-separated in the response.
  const Response rev = f.ok("revoke 0 1 2");
  const std::string& csv = rev.fields.at("bundles");
  ASSERT_FALSE(csv.empty());
  const std::string first = csv.substr(0, csv.find(','));
  const Bytes bundle = *hex_decode(first);
  Reader r(bundle);
  (void)SignedResetBundle::deserialize(r, kf.sp.group);
  r.expect_end();
  EXPECT_EQ(rev.fields.at("period"), "1");
}

TEST(RequestHandler, NewPeriodAdvancesAndReturnsOneBundle) {
  HandlerFixture f;
  const Response r = f.ok("new-period");
  EXPECT_EQ(r.fields.at("period"), "1");
  EXPECT_EQ(r.fields.at("saturation"), "0/2");
  EXPECT_FALSE(r.fields.at("bundle").empty());
}

TEST(RequestHandler, MalformedRequestsGetErrNotCrashes) {
  HandlerFixture f;
  EXPECT_NE(f.err(""), "");
  EXPECT_NE(f.err("frobnicate"), "");
  EXPECT_NE(f.err("revoke"), "");
  EXPECT_NE(f.err("revoke banana"), "");
  EXPECT_NE(f.err("revoke -5"), "");
  EXPECT_NE(f.err("revoke 18446744073709551616"), "");
  EXPECT_NE(f.err("revoke 404"), "");       // unknown user: Error -> err
  EXPECT_NE(f.err("encrypt zz"), "");
  EXPECT_NE(f.err("encrypt"), "");
  EXPECT_NE(f.err("add-user extra-arg"), "");
  // The handler survived all of it.
  f.ok("status");
}

TEST(RequestHandler, ShutdownAcksAndSignals) {
  HandlerFixture f;
  const RequestHandler::Result res = f.handler.handle("shutdown");
  EXPECT_EQ(res.response, "ok");
  EXPECT_TRUE(res.shutdown);
  EXPECT_FALSE(f.handler.handle("status").shutdown);
}

TEST(RequestHandler, OverlongLineIsRejectedUpFront) {
  HandlerFixture f;
  const std::string huge(kMaxLineBytes + 1, 'a');
  const RequestHandler::Result res = f.handler.handle(huge);
  EXPECT_TRUE(res.response.starts_with("err "));
}

}  // namespace
}  // namespace dfky::daemon
