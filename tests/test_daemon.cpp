// The dfkyd building blocks, socket-free: the line protocol's strict
// parsers, the group-commit queue's durability/batching/error semantics,
// and RequestHandler driven line-by-line against an in-memory store.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/content.h"
#include "core/keyfile.h"
#include "daemon/daemon.h"
#include "daemon/group_commit.h"
#include "daemon/protocol.h"
#include "rng/chacha_rng.h"
#include "serial/codec.h"
#include "store/store.h"
#include "test_util.h"

namespace dfky::daemon {
namespace {

// ---- protocol helpers ---------------------------------------------------------

TEST(Protocol, ParseU64AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("8"), 8u);
  EXPECT_EQ(parse_u64("007"), 7u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(Protocol, ParseU64RejectsEverythingStoulWouldLetThrough) {
  // std::stoul accepts all of these (wrapping, trimming or truncating);
  // the daemon and the CLI must not.
  EXPECT_FALSE(parse_u64("-5"));     // stoull wraps to 2^64-5
  EXPECT_FALSE(parse_u64("+5"));
  EXPECT_FALSE(parse_u64(" 8"));
  EXPECT_FALSE(parse_u64("8 "));
  EXPECT_FALSE(parse_u64("8junk"));  // stoull stops at the junk
  EXPECT_FALSE(parse_u64("0x10"));
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("banana"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));      // 2^64
  EXPECT_FALSE(parse_u64("99999999999999999999999"));   // > 20 digits
}

TEST(Protocol, HexRoundTrips) {
  const Bytes data = {0x00, 0x0f, 0xf0, 0xff, 0x5a};
  EXPECT_EQ(hex_encode(data), "000ff0ff5a");
  EXPECT_EQ(hex_decode("000ff0ff5a"), data);
  EXPECT_EQ(hex_decode("000FF0FF5A"), data);  // uppercase tolerated
  EXPECT_EQ(hex_decode(""), Bytes{});
  EXPECT_FALSE(hex_decode("abc"));   // odd length
  EXPECT_FALSE(hex_decode("zz"));
}

TEST(Protocol, SplitTokensCollapsesRuns) {
  EXPECT_EQ(split_tokens("  add-user   1  2 "),
            (std::vector<std::string>{"add-user", "1", "2"}));
  EXPECT_TRUE(split_tokens("   ").empty());
}

TEST(Protocol, RequestTagsSplitStrictly) {
  const TaggedLine plain = split_request_tag("status");
  EXPECT_FALSE(plain.id);
  EXPECT_FALSE(plain.bad_tag);
  EXPECT_EQ(plain.body, "status");

  const TaggedLine tagged = split_request_tag("@17 revoke 3");
  ASSERT_TRUE(tagged.id);
  EXPECT_EQ(*tagged.id, 17u);
  EXPECT_EQ(tagged.body, "revoke 3");

  const TaggedLine bare = split_request_tag("@5");
  ASSERT_TRUE(bare.id);
  EXPECT_EQ(*bare.id, 5u);
  EXPECT_EQ(bare.body, "");

  // '@' with a malformed id is an error, not a guess: parse_u64 strictness
  // applies to tags too.
  EXPECT_TRUE(split_request_tag("@").bad_tag);
  EXPECT_TRUE(split_request_tag("@x status").bad_tag);
  EXPECT_TRUE(split_request_tag("@-1 status").bad_tag);
  EXPECT_TRUE(split_request_tag("@18446744073709551616 ping").bad_tag);

  EXPECT_EQ(tag_response(std::nullopt, "ok"), "ok");
  EXPECT_EQ(tag_response(7, "ok a=b"), "@7 ok a=b");
}

TEST(Protocol, ResponsesRoundTrip) {
  EXPECT_EQ(ok_response(), "ok");
  EXPECT_EQ(ok_response({{"id", "3"}, {"key", "ab"}}), "ok id=3 key=ab");
  EXPECT_EQ(err_response("no\nnewlines\rhere"), "err no newlines here");

  const auto ok = parse_response("ok id=3 key=ab");
  ASSERT_TRUE(ok && ok->ok);
  EXPECT_EQ(ok->fields.at("id"), "3");
  EXPECT_EQ(ok->fields.at("key"), "ab");

  const auto err = parse_response("err user 7 is unknown");
  ASSERT_TRUE(err);
  EXPECT_FALSE(err->ok);
  EXPECT_EQ(err->error, "user 7 is unknown");

  EXPECT_FALSE(parse_response("okay"));
  EXPECT_FALSE(parse_response("ok bare-token"));
  EXPECT_FALSE(parse_response("ok =v"));
  EXPECT_FALSE(parse_response("errx"));

  // Tagged responses carry the echoed pipeline id.
  const auto tagged = parse_response("@9 ok id=3");
  ASSERT_TRUE(tagged && tagged->ok);
  ASSERT_TRUE(tagged->id);
  EXPECT_EQ(*tagged->id, 9u);
  EXPECT_EQ(tagged->fields.at("id"), "3");
  const auto terr = parse_response("@2 err nope");
  ASSERT_TRUE(terr && !terr->ok && terr->id);
  EXPECT_EQ(*terr->id, 2u);
  EXPECT_EQ(terr->error, "nope");
  EXPECT_FALSE(parse_response("@x ok"));
  EXPECT_FALSE(parse_response("@5"));
}

// ---- group commit -------------------------------------------------------------

struct DaemonStore {
  MemFileIo fs;
  std::optional<StateStore> store;
  std::shared_mutex state_mu;

  explicit DaemonStore(std::size_t v = 2) {
    ChaChaRng rng(31);
    SecurityManager mgr(test::test_params(v, /*seed=*/31), rng);
    store.emplace(StateStore::create(fs, "store", std::move(mgr), rng));
  }
};

TEST(GroupCommit, ConcurrentMutationsAreAllDurableWhenAcked) {
  DaemonStore d;
  constexpr std::size_t kThreads = 4, kPerThread = 8;
  {
    GroupCommit commits(*d.store, d.state_mu);
    ChaChaRng rng(1);
    std::mutex rng_mu;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          commits.run([&] {
            std::lock_guard lk(rng_mu);
            d.store->add_user(rng);
          });
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(commits.committed(), kThreads * kPerThread);
    EXPECT_GE(commits.batches(), 1u);
    EXPECT_LE(commits.batches(), commits.committed());
  }
  // Every acked mutation survives a power cut.
  MemFileIo cut = d.fs;
  cut.crash();
  StateStore recovered = StateStore::open(cut, "store");
  EXPECT_EQ(recovered.manager().users().size(), kThreads * kPerThread);
}

TEST(GroupCommit, OpErrorReachesOnlyItsSubmitter) {
  DaemonStore d;
  GroupCommit commits(*d.store, d.state_mu);
  ChaChaRng rng(2);
  // A bad op (unknown user) must throw at its own run() call...
  const std::uint64_t bogus[] = {404};
  EXPECT_THROW(commits.run([&] { d.store->remove_users(bogus, rng); }),
               ContractError);
  // ...and leave the queue fully usable for the next, valid op.
  commits.run([&] { d.store->add_user(rng); });
  EXPECT_EQ(d.store->manager().users().size(), 1u);
}

TEST(GroupCommit, SyncFailureNacksTheBatchAndFailsStop) {
  // A batch whose covering fsync fails must NOT keep serving: its ops are
  // live in the in-memory manager, and a later successful flush (or the
  // destructor's set_batching(false)) would silently commit mutations the
  // clients were told had failed.
  const auto make_store = [](FileIo& io) {
    ChaChaRng rng(31);
    SecurityManager mgr(test::test_params(2, /*seed=*/31), rng);
    return StateStore::create(io, "store", std::move(mgr), rng);
  };

  // Dry run: the batch's fsync is the last mutating I/O op.
  std::uint64_t total_ops = 0;
  {
    MemFileIo fs;
    FaultyFileIo io(fs, FilePlan{});
    StateStore store = make_store(io);
    std::shared_mutex mu;
    GroupCommit commits(store, mu);
    ChaChaRng rng(1);
    commits.run([&] { store.add_user(rng); });
    total_ops = io.fault_counters().mutating_ops;
  }
  ASSERT_GT(total_ops, 0u);

  MemFileIo fs;
  FilePlan plan;
  plan.seed = 77;
  plan.crash_at = total_ops - 1;
  FaultyFileIo io(fs, plan);
  StateStore store = make_store(io);
  std::shared_mutex mu;
  std::atomic<int> fatal_calls{0};
  Bytes wal_after_failure;
  {
    GroupCommit commits(store, mu, [&] { fatal_calls.fetch_add(1); });
    ChaChaRng rng(1);
    // The sync failure is rethrown at the submitter: a NACK.
    EXPECT_THROW(commits.run([&] { store.add_user(rng); }), CrashPoint);
    EXPECT_TRUE(commits.fatal());
    EXPECT_EQ(fatal_calls.load(), 1);
    EXPECT_TRUE(store.poisoned());
    EXPECT_EQ(commits.committed(), 0u);
    wal_after_failure = fs.read("store/wal.0");
    // The queue refuses further work instead of batching on a dead store.
    EXPECT_THROW(commits.run([&] { store.add_user(rng); }), ContractError);
  }
  // Destruction (the daemon's shutdown path) did not flush the NACKed
  // frames behind the clients' backs.
  EXPECT_EQ(fs.read("store/wal.0"), wal_after_failure);
  EXPECT_EQ(fatal_calls.load(), 1);
}

TEST(GroupCommit, DestructorReturnsStoreToImmediateMode) {
  DaemonStore d;
  {
    GroupCommit commits(*d.store, d.state_mu);
    EXPECT_TRUE(d.store->batching());
  }
  EXPECT_FALSE(d.store->batching());
  EXPECT_EQ(d.store->unsynced_records(), 0u);
}

// ---- request handler ----------------------------------------------------------

/// RequestHandler over a ShardRouter — one shard by default (the classic
/// daemon shape), more for the sharded tests. Deterministic per-shard RNGs.
struct HandlerFixture {
  MemFileIo fs;
  std::optional<ShardRouter> router;
  std::optional<RequestHandler> handler;

  explicit HandlerFixture(std::size_t shards = 1, std::size_t v = 2) {
    ChaChaRng rng(31);
    std::vector<StateStore> stores;
    if (shards == 1) {
      SecurityManager mgr(test::test_params(v, /*seed=*/31), rng);
      stores.push_back(StateStore::create(fs, "store", std::move(mgr), rng));
    } else {
      const SystemParams sp = test::test_params(v, /*seed=*/31);
      std::vector<SecurityManager> managers;
      for (std::size_t i = 0; i < shards; ++i) managers.emplace_back(sp, rng);
      stores = create_shard_set(fs, "store", std::move(managers), rng);
    }
    router.emplace(std::move(stores), [](std::size_t k) {
      return std::make_unique<ChaChaRng>(100 + k);
    });
    handler.emplace(*router);
  }

  Response ok(const std::string& line) {
    const RequestHandler::Result res = handler->handle(line);
    const auto r = parse_response(res.response);
    EXPECT_TRUE(r) << res.response;
    EXPECT_TRUE(r->ok) << res.response;
    return *r;
  }
  std::string err(const std::string& line) {
    const RequestHandler::Result res = handler->handle(line);
    const auto r = parse_response(res.response);
    EXPECT_TRUE(r && !r->ok) << res.response;
    return r ? r->error : "";
  }
};

TEST(RequestHandler, StatusReportsTheStore) {
  HandlerFixture f;
  const Response r = f.ok("status");
  EXPECT_EQ(r.fields.at("shards"), "1");
  EXPECT_EQ(r.fields.at("period"), "0");
  EXPECT_EQ(r.fields.at("periods"), "0");
  EXPECT_EQ(r.fields.at("active"), "0");
  EXPECT_EQ(r.fields.at("revoked"), "0");
  EXPECT_EQ(r.fields.at("saturation"), "0/2");
  EXPECT_EQ(r.fields.at("generation"), "0");
}

TEST(RequestHandler, AddUserIssuesAWorkingKeyFile) {
  HandlerFixture f;
  const Response added = f.ok("add-user");
  EXPECT_EQ(added.fields.at("id"), "0");
  const auto key_bytes = hex_decode(added.fields.at("key"));
  ASSERT_TRUE(key_bytes);
  const KeyFileData kf = decode_key_file(*key_bytes);

  // The daemon-issued key opens daemon-encrypted content.
  const Bytes payload = {'h', 'i', ' ', 'd', 'f', 'k', 'y'};
  const Response enc = f.ok("encrypt " + hex_encode(payload));
  EXPECT_EQ(enc.fields.at("bytes"), "7");
  const auto ct_bytes = hex_decode(enc.fields.at("ct"));
  ASSERT_TRUE(ct_bytes);
  Reader r(*ct_bytes);
  const ContentMessage msg = ContentMessage::deserialize(r, kf.sp.group);
  r.expect_end();
  EXPECT_EQ(open_content(kf.sp, kf.key, msg), payload);
}

TEST(RequestHandler, RevokeCutsTheKeyOffImmediately) {
  HandlerFixture f;
  const Response added = f.ok("add-user");
  f.ok("add-user");  // a second user keeps the system non-trivial
  const KeyFileData kf =
      decode_key_file(*hex_decode(added.fields.at("key")));

  const Response rev = f.ok("revoke " + added.fields.at("id"));
  EXPECT_EQ(rev.fields.at("saturation"), "1/2");
  // No period roll was needed, so no bundles — the public-key edit alone
  // already excludes the revoked key from new broadcasts.
  EXPECT_EQ(rev.fields.at("bundles"), "");

  const Response enc = f.ok("encrypt 00ff");
  const Bytes ct = *hex_decode(enc.fields.at("ct"));
  Reader cr(ct);
  const ContentMessage msg = ContentMessage::deserialize(cr, kf.sp.group);
  EXPECT_THROW(open_content(kf.sp, kf.key, msg), Error);

  const Response st = f.ok("status");
  EXPECT_EQ(st.fields.at("active"), "1");
  EXPECT_EQ(st.fields.at("revoked"), "1");
}

TEST(RequestHandler, SaturatingRevokeRollsThePeriodAndReturnsBundles) {
  HandlerFixture f;
  const Response added = f.ok("add-user");
  f.ok("add-user");
  f.ok("add-user");
  const KeyFileData kf =
      decode_key_file(*hex_decode(added.fields.at("key")));

  // v = 2, so revoking three users forces a New-period mid-batch; its
  // signed bundle comes back comma-separated in the response.
  const Response rev = f.ok("revoke 0 1 2");
  const std::string& csv = rev.fields.at("bundles");
  ASSERT_FALSE(csv.empty());
  const std::string first = csv.substr(0, csv.find(','));
  const Bytes bundle = *hex_decode(first);
  Reader r(bundle);
  (void)SignedResetBundle::deserialize(r, kf.sp.group);
  r.expect_end();
  EXPECT_EQ(rev.fields.at("period"), "1");
}

TEST(RequestHandler, NewPeriodAdvancesAndReturnsOneBundle) {
  HandlerFixture f;
  const Response r = f.ok("new-period");
  EXPECT_EQ(r.fields.at("period"), "1");
  EXPECT_EQ(r.fields.at("saturation"), "0/2");
  const std::string& csv = r.fields.at("bundles");
  EXPECT_FALSE(csv.empty());
  EXPECT_EQ(csv.find(','), std::string::npos);  // one shard, one bundle
}

TEST(RequestHandler, MalformedRequestsGetErrNotCrashes) {
  HandlerFixture f;
  EXPECT_NE(f.err(""), "");
  EXPECT_NE(f.err("frobnicate"), "");
  EXPECT_NE(f.err("revoke"), "");
  EXPECT_NE(f.err("revoke banana"), "");
  EXPECT_NE(f.err("revoke -5"), "");
  EXPECT_NE(f.err("revoke 18446744073709551616"), "");
  EXPECT_NE(f.err("revoke 404"), "");       // unknown user: Error -> err
  EXPECT_NE(f.err("encrypt zz"), "");
  EXPECT_NE(f.err("encrypt"), "");
  EXPECT_NE(f.err("add-user extra-arg"), "");
  // The handler survived all of it.
  f.ok("status");
}

TEST(RequestHandler, ShutdownAcksAndSignals) {
  HandlerFixture f;
  const RequestHandler::Result res = f.handler->handle("shutdown");
  EXPECT_EQ(res.response, "ok");
  EXPECT_TRUE(res.shutdown);
  EXPECT_FALSE(f.handler->handle("status").shutdown);
}

TEST(RequestHandler, OverlongLineIsRejectedUpFront) {
  HandlerFixture f;
  const std::string huge(kMaxLineBytes + 1, 'a');
  const RequestHandler::Result res = f.handler->handle(huge);
  EXPECT_TRUE(res.response.starts_with("err "));
}

TEST(RequestHandler, TaggedRequestsEchoTheirTag) {
  HandlerFixture f;
  const RequestHandler::Result res = f.handler->handle("@42 status");
  EXPECT_TRUE(res.response.starts_with("@42 ok ")) << res.response;
  const auto r = parse_response(res.response);
  ASSERT_TRUE(r && r->ok && r->id);
  EXPECT_EQ(*r->id, 42u);

  // Errors echo the tag too — a pipelining client must be able to match
  // every response, including failures.
  const auto e = parse_response(f.handler->handle("@7 frobnicate").response);
  ASSERT_TRUE(e && !e->ok && e->id);
  EXPECT_EQ(*e->id, 7u);

  // A malformed tag cannot be echoed; the reply is an untagged err.
  const RequestHandler::Result bad = f.handler->handle("@nope status");
  EXPECT_TRUE(bad.response.starts_with("err ")) << bad.response;

  // A tagged shutdown still signals.
  EXPECT_TRUE(f.handler->handle("@1 shutdown").shutdown);
}

// ---- sharded handler / ShardRouter --------------------------------------------

TEST(ShardRouter, AddUserRoundRobinsAndIdsNameTheirShard) {
  HandlerFixture f(/*shards=*/3);
  const Response st = f.ok("status");
  EXPECT_EQ(st.fields.at("shards"), "3");
  EXPECT_EQ(st.fields.at("periods"), "0,0,0");
  EXPECT_EQ(st.fields.at("saturation"), "0/6");  // summed across shards

  std::set<std::string> shards_seen;
  for (int i = 0; i < 6; ++i) {
    const Response added = f.ok("add-user");
    const std::uint64_t id = *parse_u64(added.fields.at("id"));
    const std::uint64_t shard = *parse_u64(added.fields.at("shard"));
    EXPECT_EQ(id % 3, shard);  // global id = local*N + shard
    shards_seen.insert(added.fields.at("shard"));
  }
  EXPECT_EQ(shards_seen.size(), 3u);  // round-robin reached every shard
  EXPECT_EQ(f.ok("status").fields.at("active"), "6");
}

TEST(ShardRouter, KeysOpenOnlyTheirOwnShardsBroadcasts) {
  HandlerFixture f(/*shards=*/2);
  const Response a = f.ok("add-user");  // shard 0
  const Response b = f.ok("add-user");  // shard 1
  ASSERT_EQ(a.fields.at("shard"), "0");
  ASSERT_EQ(b.fields.at("shard"), "1");
  const KeyFileData ka = decode_key_file(*hex_decode(a.fields.at("key")));
  const KeyFileData kb = decode_key_file(*hex_decode(b.fields.at("key")));

  const Bytes payload = {1, 2, 3};
  const Response enc0 = f.ok("encrypt " + hex_encode(payload) + " 0");
  EXPECT_EQ(enc0.fields.at("shard"), "0");
  const Bytes ct0 = *hex_decode(enc0.fields.at("ct"));
  Reader r0(ct0);
  const ContentMessage m0 = ContentMessage::deserialize(r0, ka.sp.group);
  EXPECT_EQ(open_content(ka.sp, ka.key, m0), payload);
  // Shard 1's key is a different scheme instance entirely.
  EXPECT_THROW(open_content(kb.sp, kb.key, m0), Error);

  EXPECT_NE(f.err("encrypt 00 2"), "");  // out-of-range shard
}

TEST(ShardRouter, RevokePartitionsAcrossShards) {
  HandlerFixture f(/*shards=*/2);
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(f.ok("add-user").fields.at("id"));
  // One id per shard in a single request: both shards commit their part.
  f.ok("revoke " + ids[0] + " " + ids[1]);
  const Response st = f.ok("status");
  EXPECT_EQ(st.fields.at("active"), "2");
  EXPECT_EQ(st.fields.at("revoked"), "2");
  EXPECT_EQ(st.fields.at("saturation"), "2/4");
  // An unknown id fails its shard's sub-batch.
  EXPECT_NE(f.err("revoke 404"), "");
}

TEST(ShardRouter, NewPeriodIsACrossShardBarrier) {
  HandlerFixture f(/*shards=*/3);
  const Response r = f.ok("new-period");
  EXPECT_EQ(r.fields.at("period"), "1");
  // One bundle per shard, every shard on the new epoch.
  EXPECT_EQ(std::count(r.fields.at("bundles").begin(),
                       r.fields.at("bundles").end(), ','),
            2);
  EXPECT_EQ(f.ok("status").fields.at("periods"), "1,1,1");

  // Durable on every shard: a power cut after the ack loses nothing.
  MemFileIo cut = f.fs;
  cut.crash();
  ChaChaRng rng(9);
  ShardSetReport rep;
  const std::vector<StateStore> recovered =
      open_shard_set(cut, "store", rng, {}, &rep);
  EXPECT_EQ(rep.epoch, 1u);
  EXPECT_EQ(rep.rolled_forward, 0u);
  for (const StateStore& s : recovered) {
    EXPECT_EQ(s.manager().period(), 1u);
  }
}

TEST(ShardRouter, EqualizesEpochsDriftedBySaturatingRevokes) {
  // v=2: revoking 3 users on one shard rolls that shard's period
  // autonomously. The next cross-shard new-period must land everyone on
  // one common epoch, not leave the set staggered.
  HandlerFixture f(/*shards=*/2);
  std::vector<std::string> shard0_ids;
  for (int i = 0; i < 8; ++i) {
    const Response added = f.ok("add-user");
    if (added.fields.at("shard") == "0") {
      shard0_ids.push_back(added.fields.at("id"));
    }
  }
  ASSERT_GE(shard0_ids.size(), 3u);
  f.ok("revoke " + shard0_ids[0] + " " + shard0_ids[1] + " " +
       shard0_ids[2]);
  EXPECT_EQ(f.ok("status").fields.at("periods"), "1,0");  // drifted

  const Response np = f.ok("new-period");
  EXPECT_EQ(np.fields.at("period"), "2");  // max(1,0)+1
  EXPECT_EQ(f.ok("status").fields.at("periods"), "2,2");
  // The laggard shard emitted a catch-up bundle for each period it
  // skipped: 1 (shard 0) + 2 (shard 1) bundles in total.
  EXPECT_EQ(std::count(np.fields.at("bundles").begin(),
                       np.fields.at("bundles").end(), ','),
            2);
}

TEST(ShardRouter, ConcurrentMutationsLandOnTheRightShardsDurably) {
  HandlerFixture f(/*shards=*/3);
  constexpr std::size_t kThreads = 4, kPerThread = 6;
  std::vector<std::thread> threads;
  std::mutex ids_mu;
  std::vector<std::uint64_t> ids;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const ShardRouter::AddedUser added = f.router->add_user();
        std::lock_guard lk(ids_mu);
        ids.push_back(added.global_id);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // No id was handed out twice, regardless of interleaving.
  std::set<std::uint64_t> unique_ids(ids.begin(), ids.end());
  EXPECT_EQ(unique_ids.size(), kThreads * kPerThread);

  // Every ack survives a crash of all shards at once.
  MemFileIo cut = f.fs;
  cut.crash();
  ChaChaRng rng(9);
  const std::vector<StateStore> recovered =
      open_shard_set(cut, "store", rng);
  std::size_t users = 0;
  for (const StateStore& s : recovered) users += s.manager().users().size();
  EXPECT_EQ(users, kThreads * kPerThread);
}

// ---- replication: follower routers, repl verbs, promotion ---------------------

/// A primary router plus a follower router over a cloned shard set, both
/// socket-free behind RequestHandlers — the unit-level shape of a
/// two-daemon cluster (the sockets are exercised by daemon_e2e.sh).
struct ReplFixture {
  MemFileIo pfs, ffs;
  std::optional<ShardRouter> prim, foll;
  std::optional<RequestHandler> ph, fh;

  explicit ReplFixture(std::size_t shards = 2, std::size_t v = 2) {
    ChaChaRng rng(31);
    const SystemParams sp = test::test_params(v, /*seed=*/31);
    std::vector<SecurityManager> managers;
    for (std::size_t i = 0; i < shards; ++i) managers.emplace_back(sp, rng);
    std::vector<StateStore> stores =
        create_shard_set(pfs, "store", std::move(managers), rng);
    clone_store_files(pfs, ffs, "store");  // the bootstrap clone
    prim.emplace(std::move(stores), [](std::size_t k) {
      return std::make_unique<ChaChaRng>(100 + k);
    });
    // A follower opens its shards individually — no epoch equalization.
    std::vector<StateStore> fstores;
    for (std::size_t i = 0; i < shards; ++i) {
      fstores.push_back(
          StateStore::open(ffs, "store/" + shard_dir_name(i)));
    }
    foll.emplace(
        std::move(fstores),
        [](std::size_t k) { return std::make_unique<ChaChaRng>(200 + k); },
        std::function<void()>{}, /*follower=*/true);
    ph.emplace(*prim);
    fh.emplace(*foll);
  }

  Response ok(RequestHandler& h, const std::string& line) {
    const RequestHandler::Result res = h.handle(line);
    const auto r = parse_response(res.response);
    EXPECT_TRUE(r) << res.response;
    EXPECT_TRUE(r && r->ok) << res.response;
    return r ? *r : Response{};
  }
  std::string err(RequestHandler& h, const std::string& line) {
    const RequestHandler::Result res = h.handle(line);
    const auto r = parse_response(res.response);
    EXPECT_TRUE(r && !r->ok) << res.response;
    return r ? r->error : "";
  }

  /// One catch-up pass, primary -> follower, through the wire verbs —
  /// exactly the requests ReplicationSender issues.
  void ship_all() {
    for (std::size_t k = 0; k < prim->shards(); ++k) {
      ShardRouter::ReplPosition pos = foll->repl_positions()[k];
      StateStore& st = prim->store(k);
      if (pos.generation != st.generation()) {
        ok(*fh, "repl-snap " + std::to_string(k) + " " +
                    std::to_string(st.generation()) + " 0 " +
                    hex_encode(st.read_snapshot_frame()));
        pos = ShardRouter::ReplPosition{st.generation(), 0, {}};
      }
      const WalShipment ship = st.read_frames_from(pos.records);
      if (ship.records == 0) continue;
      const Response r =
          ok(*fh, "repl-append " + std::to_string(k) + " " +
                      std::to_string(ship.generation) + " 0 " +
                      std::to_string(ship.start_record) + " " +
                      hex_encode(ship.frames));
      EXPECT_EQ(r.fields.at("seq"), std::to_string(st.wal_records()));
    }
  }
};

TEST(Replication, FollowerRejectsMutationsAndReportsItsRole) {
  ReplFixture f;
  EXPECT_EQ(f.ok(*f.ph, "status").fields.at("role"), "primary");
  EXPECT_EQ(f.ok(*f.fh, "status").fields.at("role"), "follower");

  EXPECT_NE(f.err(*f.fh, "add-user"), "");
  EXPECT_NE(f.err(*f.fh, "revoke 0"), "");
  EXPECT_NE(f.err(*f.fh, "new-period"), "");
  // Reads stay available on a follower.
  f.ok(*f.fh, "encrypt 00ff");
  f.ok(*f.fh, "repl-status");

  // And a primary refuses the replica-ingest verbs: its committers own
  // the WAL, a concurrent stream would race them.
  EXPECT_NE(f.err(*f.ph, "repl-append 0 0 0 0 ab"), "");
  EXPECT_NE(f.err(*f.ph, "repl-snap 0 1 0 ab"), "");
}

TEST(Replication, WireVerbsConvergeTheFollower) {
  ReplFixture f;
  for (int i = 0; i < 5; ++i) f.ok(*f.ph, "add-user");
  f.ok(*f.ph, "new-period");
  f.ship_all();

  const Response ps = f.ok(*f.ph, "status");
  const Response fs = f.ok(*f.fh, "status");
  for (const char* key : {"active", "revoked", "periods", "wal_records"}) {
    EXPECT_EQ(fs.fields.at(key), ps.fields.at(key)) << key;
  }
  for (std::size_t k = 0; k < f.prim->shards(); ++k) {
    EXPECT_EQ(f.foll->store(k).chain_head_hex(),
              f.prim->store(k).chain_head_hex())
        << "shard " << k;
  }

  // repl-status mirrors the per-shard positions.
  const Response rs = f.ok(*f.fh, "repl-status");
  EXPECT_EQ(rs.fields.at("role"), "follower");
  for (std::size_t k = 0; k < f.prim->shards(); ++k) {
    const StateStore& st = f.prim->store(k);
    EXPECT_EQ(rs.fields.at("s" + std::to_string(k)),
              std::to_string(st.generation()) + ":" +
                  std::to_string(st.wal_records()) + ":" +
                  st.chain_head_hex());
  }

  // Duplicate re-delivery of the full history is acked, not re-applied.
  const std::string before = f.ok(*f.fh, "status").fields.at("wal_records");
  for (std::size_t k = 0; k < f.prim->shards(); ++k) {
    const WalShipment ship = f.prim->store(k).read_frames_from(0);
    if (ship.records == 0) continue;
    f.ok(*f.fh, "repl-append " + std::to_string(k) + " " +
                    std::to_string(ship.generation) + " 0 0 " +
                    hex_encode(ship.frames));
  }
  EXPECT_EQ(f.ok(*f.fh, "status").fields.at("wal_records"), before);
}

TEST(Replication, PromoteServesHistoryAndAcceptsMutations) {
  ReplFixture f;
  std::vector<std::string> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(f.ok(*f.ph, "add-user").fields.at("key"));
  }
  f.ship_all();

  const Response pr = f.ok(*f.fh, "promote");
  EXPECT_EQ(pr.fields.at("role"), "primary");
  EXPECT_EQ(f.ok(*f.fh, "status").fields.at("role"), "primary");
  // Idempotent: a retried promote is an ok, not a crash.
  f.ok(*f.fh, "promote");

  // The promoted follower serves the full acked history...
  const Response st = f.ok(*f.fh, "status");
  EXPECT_EQ(st.fields.at("active"), "4");
  // ...a key issued by the old primary opens the new primary's broadcasts...
  const KeyFileData kf = decode_key_file(*hex_decode(keys[0]));
  const Bytes payload = {9, 9, 9};
  const Response enc =
      f.ok(*f.fh, "encrypt " + hex_encode(payload) + " 0");
  const Bytes ct = *hex_decode(enc.fields.at("ct"));
  Reader r(ct);
  const ContentMessage msg = ContentMessage::deserialize(r, kf.sp.group);
  r.expect_end();
  EXPECT_EQ(open_content(kf.sp, kf.key, msg), payload);
  // ...and mutations flow again, through freshly started committers.
  f.ok(*f.fh, "add-user");
  f.ok(*f.fh, "new-period");
  EXPECT_EQ(f.ok(*f.fh, "status").fields.at("active"), "5");

  // Acked history really is durable on the promoted node.
  MemFileIo cut = f.ffs;
  cut.crash();
  ChaChaRng rng(9);
  const std::vector<StateStore> recovered =
      open_shard_set(cut, "store", rng);
  std::size_t users = 0;
  for (const StateStore& s : recovered) users += s.manager().users().size();
  EXPECT_EQ(users, 5u);
}

TEST(Replication, PromoteAndDemoteHooksFireOnlyOnRoleChange) {
  // The daemon wires post_promote -> start_replication and post_demote ->
  // start_watchdog: a manually promoted node must replicate before it
  // acks, and a demoted one must keep voting in elections. Idempotent
  // retries of either verb must NOT re-fire the hooks.
  ReplFixture f;
  int promoted = 0, demoted = 0, pre = 0;
  RequestHandler hooked(
      *f.foll, RequestHandler::Hooks{
                   .pre_demote = [&] { ++pre; },
                   .post_demote = [&] { ++demoted; },
                   .post_promote = [&] { ++promoted; }});
  EXPECT_EQ(f.ok(hooked, "promote").fields.at("already"), "0");
  EXPECT_EQ(promoted, 1);
  EXPECT_EQ(f.ok(hooked, "promote").fields.at("already"), "1");
  EXPECT_EQ(promoted, 1);  // idempotent retry: replication already runs

  EXPECT_EQ(f.ok(hooked, "demote").fields.at("already"), "0");
  EXPECT_EQ(pre, 1);
  EXPECT_EQ(demoted, 1);
  EXPECT_EQ(f.ok(hooked, "demote").fields.at("already"), "1");
  EXPECT_EQ(pre, 2);       // pre_demote always runs (stop is idempotent)
  EXPECT_EQ(demoted, 1);   // but the watchdog is not re-armed twice
}

TEST(Replication, PromoteEqualizesMixedEpochs) {
  // A primary killed mid-barrier can leave the follower's shards at mixed
  // periods (shard 0's frames arrived, shard 1's did not). promote() must
  // land every shard on one epoch before serving.
  ReplFixture f;
  f.ok(*f.ph, "new-period");
  // Ship only shard 0.
  const WalShipment ship = f.prim->store(0).read_frames_from(0);
  ASSERT_GT(ship.records, 0u);
  f.ok(*f.fh, "repl-append 0 " + std::to_string(ship.generation) + " 0 0 " +
                  hex_encode(ship.frames));
  EXPECT_EQ(f.ok(*f.fh, "status").fields.at("periods"), "1,0");

  f.ok(*f.fh, "promote");
  EXPECT_EQ(f.ok(*f.fh, "status").fields.at("periods"), "1,1");
  f.ok(*f.fh, "add-user");  // and it serves
}

}  // namespace
}  // namespace dfky::daemon
