#!/usr/bin/env bash
# Gates the daemon bench (E12 group commit, E13 sharding) against the
# checked-in baseline in bench/baselines/: a fresh DFKY_BENCH_SMOKE=1 run
# must keep every (bench, op, n, v) median within the threshold factor of
# the recorded figure. The threshold is deliberately generous — smoke runs
# are short and CI machines differ from the machine that recorded the
# baseline — so only step-change regressions (a lost batch path, an extra
# fsync per ack) trip it, not scheduler noise.
#
#   tests/bench_baseline_check.sh <bench-binary> <bench_compare> <baseline-dir>
set -euo pipefail

bench="$(readlink -f "$1")"
compare="$(readlink -f "$2")"
baselines="$(readlink -f "$3")"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
cd "$work"

fail() { echo "bench_baseline_check: $1" >&2; exit 1; }

[ -d "$baselines" ] || fail "no baseline dir at $baselines"

mkdir current
(cd current && DFKY_BENCH_SMOKE=1 "$bench" > /dev/null) \
  || fail "bench run failed"

"$compare" "$baselines" current --threshold 5.0 > compare.txt \
  || { cat compare.txt >&2; fail "median regressed past 5x of the baseline"; }
cat compare.txt

# The gate is only meaningful if records actually matched: a renamed op or
# baseline file silently comparing nothing must fail loudly.
grep -Eq ' [1-9][0-9]* compared' compare.txt \
  || fail "no records matched the baseline (renamed op or baseline file?)"

echo "bench_baseline_check: ok"
