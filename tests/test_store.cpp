// The crash-consistent state store: WAL framing, snapshot rotation,
// recovery, the full crash-point matrix, and dfky_fsck semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include <unistd.h>

#include "core/receiver.h"
#include "core/scheme.h"
#include "rng/chacha_rng.h"
#include "store/store.h"
#include "test_util.h"

namespace dfky {
namespace {

/// The deterministic mutation script every store test runs: adds, a
/// removal, a proactive new-period, and a batch removal (v = 2). User 0
/// (added before the store exists) is never revoked.
constexpr std::uint64_t kScriptSeed = 777;

SecurityManager script_base_manager(ChaChaRng& rng,
                                    UserKey* survivor = nullptr) {
  SecurityManager mgr(test::test_params(2, /*seed=*/kScriptSeed), rng);
  const auto u0 = mgr.add_user(rng);  // user 0: the survivor
  if (survivor) *survivor = u0.key;
  return mgr;
}

/// Runs the script against any object exposing the mutating quartet
/// (StateStore or SecurityManager), calling `checkpoint` after each op.
template <typename Ops, typename Fn>
void run_script(Ops& ops, ChaChaRng& rng, Fn&& checkpoint) {
  ops.add_user(rng);  // user 1
  checkpoint();
  ops.add_user(rng);  // user 2
  checkpoint();
  const std::uint64_t kill1[] = {1};
  ops.remove_users(kill1, rng);
  checkpoint();
  ops.new_period(rng);
  checkpoint();
  ops.add_user(rng);  // user 3
  checkpoint();
  const std::uint64_t kill2[] = {2, 3};  // saturates period 1 (v = 2)
  ops.remove_users(kill2, rng);
  checkpoint();
}

struct ScriptFixture {
  MemFileIo base_fs;     // state right after create(), all durable
  Bytes initial_state;   // manager state the store was created around
  UserKey survivor_key;  // user 0's key (period 0)
  std::vector<Bytes> op_states;      // manager state after each script op
  std::vector<Bytes> record_states;  // ... after each mutation record
  std::vector<std::size_t> records_after_op;  // prefix record count per op
  std::uint64_t total_io_ops = 0;  // mutating I/O ops of a full faulty run
  StoreOptions opts;
};

ScriptFixture build_fixture() {
  ScriptFixture f;
  f.opts.snapshot_every = 3;  // force rotations mid-script

  // Clean reference run, capturing the manager state after every op.
  {
    ChaChaRng rng(kScriptSeed);
    SecurityManager mgr = script_base_manager(rng, &f.survivor_key);
    f.initial_state = mgr.save_state();
    ChaChaRng key_rng(1);
    StateStore store = StateStore::create(f.base_fs, "store", std::move(mgr),
                                          key_rng, f.opts);
    MemFileIo after_create = f.base_fs;  // fixture starts post-create
    run_script(store, rng, [&] {
      f.op_states.push_back(store.manager().save_state());
    });
    f.base_fs = after_create;
  }

  // Record-granular states: replay the script on a bare manager with
  // mutation recording on, snapshotting after every drained record.
  {
    SecurityManager mgr = SecurityManager::restore_state(f.initial_state);
    mgr.set_mutation_recording(true);
    SecurityManager shadow = SecurityManager::restore_state(f.initial_state);
    f.record_states.push_back(shadow.save_state());
    ChaChaRng rng(kScriptSeed);
    script_base_manager(rng);  // burn the setup draws
    run_script(mgr, rng, [&] {
      for (const ManagerMutation& m : mgr.take_mutation_log()) {
        shadow.apply_mutation(m);
        f.record_states.push_back(shadow.save_state());
      }
      f.records_after_op.push_back(f.record_states.size() - 1);
    });
    // Replay really is byte-for-byte: the shadow tracked the original.
    for (std::size_t i = 0; i < f.op_states.size(); ++i) {
      EXPECT_EQ(f.record_states[f.records_after_op[i]], f.op_states[i])
          << "op " << i;
    }
  }

  // Count the I/O ops of one full faulty (but crash-free) run.
  {
    MemFileIo fs = f.base_fs;
    FaultyFileIo io(fs, FilePlan{});
    StateStore store = StateStore::open(io, "store", f.opts);
    ChaChaRng rng(kScriptSeed);
    script_base_manager(rng);
    run_script(store, rng, [] {});
    f.total_io_ops = io.fault_counters().mutating_ops;
  }
  return f;
}

const ScriptFixture& fixture() {
  static const ScriptFixture f = build_fixture();
  return f;
}

/// Index of `state` in the record-granular state list, or npos.
std::size_t state_index(const ScriptFixture& f, const Bytes& state) {
  for (std::size_t i = 0; i < f.record_states.size(); ++i) {
    if (f.record_states[i] == state) return i;
  }
  return static_cast<std::size_t>(-1);
}

TEST(StateStore, CreateThenOpenRoundTrips) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  StateStore store = StateStore::open(fs, "store", f.opts);
  EXPECT_EQ(store.manager().save_state(), f.initial_state);
  EXPECT_EQ(store.generation(), 0u);
  EXPECT_EQ(store.wal_records(), 0u);
  const RecoveryReport& r = store.recovery_report();
  EXPECT_EQ(r.replayed_records, 0u);
  EXPECT_EQ(r.truncated_records, 0u);
  EXPECT_EQ(r.skipped_snapshots, 0u);
  EXPECT_EQ(r.stale_files_removed, 0u);
}

TEST(StateStore, EveryMutationIsDurableBeforeItReturns) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  std::size_t op = 0;
  StateStore store = StateStore::open(fs, "store", f.opts);
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(store, rng, [&] {
    // Power cut immediately after the op acked. Everything must survive.
    MemFileIo cut = fs;
    cut.crash();
    StateStore recovered = StateStore::open(cut, "store", f.opts);
    EXPECT_EQ(recovered.manager().save_state(), f.op_states[op])
        << "op " << op;
    ++op;
  });
  ASSERT_EQ(op, f.op_states.size());
}

TEST(StateStore, SnapshotRotationLeavesExactlyOneGeneration) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  StateStore store = StateStore::open(fs, "store", f.opts);
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(store, rng, [] {});
  EXPECT_GE(store.generation(), 1u);  // snapshot_every = 3 forced rotations
  const std::string snap =
      StateStore::kSnapPrefix + std::to_string(store.generation());
  const std::string wal =
      StateStore::kWalPrefix + std::to_string(store.generation());
  EXPECT_EQ(fs.list("store"),
            (std::vector<std::string>{StateStore::kLockFile, snap,
                                      StateStore::kKeyFile, wal}));

  store.snapshot();  // explicit rotation resets the WAL
  EXPECT_EQ(store.wal_records(), 0u);
  MemFileIo cut = fs;
  cut.crash();
  StateStore recovered = StateStore::open(cut, "store", f.opts);
  EXPECT_EQ(recovered.manager().save_state(), f.op_states.back());
  EXPECT_EQ(recovered.recovery_report().replayed_records, 0u);
}

TEST(StateStore, CreateRefusesAnExistingStore) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  ChaChaRng rng(5);
  SecurityManager mgr(test::test_params(2), rng);
  EXPECT_THROW(StateStore::create(fs, "store", std::move(mgr), rng, f.opts),
               ContractError);
}

TEST(StateStore, OpenRejectsMissingOrKeylessDirectory) {
  MemFileIo fs;
  EXPECT_THROW(StateStore::open(fs, "nowhere"), DecodeError);
  fs.mkdir("empty");
  EXPECT_THROW(StateStore::open(fs, "empty"), DecodeError);
}

TEST(StateStore, GarbageTailIsTruncatedAndReported) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  {
    StateStore store = StateStore::open(fs, "store", f.opts);
    ChaChaRng rng(kScriptSeed);
    script_base_manager(rng);
    store.add_user(rng);  // one real record in wal.0
  }
  fs.append("store/wal.0", Bytes(37, 0xEE));
  fs.fsync_file("store/wal.0");
  fs.fsync_dir("store");

  {
    StateStore recovered = StateStore::open(fs, "store", f.opts);
    EXPECT_EQ(recovered.manager().save_state(), f.op_states[0]);
    EXPECT_EQ(recovered.recovery_report().replayed_records, 1u);
    EXPECT_EQ(recovered.recovery_report().truncated_bytes, 37u);
    EXPECT_GE(recovered.recovery_report().truncated_records, 1u);
  }  // release the store lock: opens are exclusive
  // The truncation is itself durable: a second open is clean.
  StateStore again = StateStore::open(fs, "store", f.opts);
  EXPECT_EQ(again.recovery_report().truncated_bytes, 0u);
}

TEST(StateStore, BitFlipInWalTruncatesFromTheFlippedRecord) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  std::size_t first_end = 0;
  {
    StateStore store = StateStore::open(fs, "store", f.opts);
    ChaChaRng rng(kScriptSeed);
    script_base_manager(rng);
    store.add_user(rng);
    first_end = fs.read("store/wal.0").size();
    store.add_user(rng);
  }
  // Flip one payload bit inside the second record (frame header is 40
  // bytes: length + CRC + chain tag).
  Bytes wal = fs.read("store/wal.0");
  ASSERT_GT(wal.size(), first_end + 41);
  wal[first_end + 41] ^= 0x10;
  fs.write("store/wal.0", wal);
  fs.fsync_file("store/wal.0");

  StateStore recovered = StateStore::open(fs, "store", f.opts);
  EXPECT_EQ(recovered.manager().save_state(), f.op_states[0]);
  EXPECT_EQ(recovered.recovery_report().replayed_records, 1u);
  EXPECT_EQ(recovered.recovery_report().truncated_records, 1u);
}

TEST(StateStore, SplicedDuplicateRecordFailsTheHmacChain) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  std::size_t first_end = 0;
  {
    StateStore store = StateStore::open(fs, "store", f.opts);
    ChaChaRng rng(kScriptSeed);
    script_base_manager(rng);
    store.add_user(rng);
    first_end = fs.read("store/wal.0").size();
    store.add_user(rng);
  }
  // Replay attack: duplicate the first record's frame (it starts right
  // after the 45-byte WAL header) at the tail. Its CRC is fine; the
  // chained HMAC is what must reject it.
  const Bytes wal = fs.read("store/wal.0");
  Bytes spliced = wal;
  spliced.insert(spliced.end(), wal.begin() + 45, wal.begin() + first_end);
  fs.write("store/wal.0", spliced);
  fs.fsync_file("store/wal.0");

  StateStore recovered = StateStore::open(fs, "store", f.opts);
  EXPECT_EQ(recovered.manager().save_state(), f.op_states[1]);
  EXPECT_EQ(recovered.recovery_report().replayed_records, 2u);
  EXPECT_EQ(recovered.recovery_report().truncated_records, 1u);
}

TEST(StateStore, InvalidNewerSnapshotIsSkippedAndRemoved) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  // A forged newer generation that fails validation must not mask gen 0.
  fs.write("store/snap.7", Bytes(64, 0x5A));
  fs.fsync_file("store/snap.7");
  fs.fsync_dir("store");
  StateStore recovered = StateStore::open(fs, "store", f.opts);
  EXPECT_EQ(recovered.generation(), 0u);
  EXPECT_EQ(recovered.recovery_report().skipped_snapshots, 1u);
  EXPECT_GE(recovered.recovery_report().stale_files_removed, 1u);
  EXPECT_FALSE(fs.exists("store/snap.7"));
  EXPECT_EQ(recovered.manager().save_state(), f.initial_state);
}

TEST(StateStore, CorruptOnlySnapshotIsUnrecoverable) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  Bytes snap = fs.read("store/snap.0");
  snap[snap.size() / 2] ^= 0x01;
  fs.write("store/snap.0", snap);
  fs.fsync_file("store/snap.0");
  EXPECT_THROW(StateStore::open(fs, "store", f.opts), DecodeError);
}

// The tentpole assertion: kill the process-model at EVERY mutating I/O
// boundary of the script. After each crash the store must recover to a
// record-prefix of the mutation sequence, at least as new as the last
// acknowledged operation; fsck must pass; and the pre-crash survivor
// (user 0) must still be able to decrypt after catching up.
TEST(StateStore, CrashMatrixRecoversAPrefixAtEveryCrashPoint) {
  const ScriptFixture& f = fixture();
  ASSERT_GT(f.total_io_ops, 0u);
  for (std::uint64_t crash_at = 0; crash_at < f.total_io_ops; ++crash_at) {
    MemFileIo fs = f.base_fs;
    FilePlan plan;
    plan.seed = 1000 + crash_at;
    plan.crash_at = crash_at;
    FaultyFileIo io(fs, plan);

    std::size_t acked_ops = 0;
    bool crashed = false;
    try {
      StateStore store = StateStore::open(io, "store", f.opts);
      ChaChaRng rng(kScriptSeed);
      script_base_manager(rng);
      run_script(store, rng, [&] { ++acked_ops; });
    } catch (const CrashPoint&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "crash_at " << crash_at;

    fs.crash();  // power cut: only fsync'ed state survives
    StateStore recovered = StateStore::open(fs, "store", f.opts);
    const Bytes state = recovered.manager().save_state();
    const std::size_t idx = state_index(f, state);
    ASSERT_NE(idx, static_cast<std::size_t>(-1))
        << "crash_at " << crash_at
        << ": recovered state is not a record-prefix of the script";
    const std::size_t min_records =
        acked_ops == 0 ? 0 : f.records_after_op[acked_ops - 1];
    EXPECT_GE(idx, min_records)
        << "crash_at " << crash_at << ": an acknowledged op was lost";

    // The recovered directory is pristine again.
    const FsckReport fsck = fsck_store(fs, "store", /*repair=*/false);
    EXPECT_TRUE(fsck.ok) << "crash_at " << crash_at;

    // The survivor catches up through the archive and still decrypts.
    const SecurityManager& mgr = recovered.manager();
    Receiver survivor(mgr.params(), f.survivor_key, mgr.verification_key());
    for (const SignedResetBundle& bundle : mgr.reset_archive()) {
      if (bundle.reset.new_period >= survivor.needed_from()) {
        survivor.apply_reset(bundle);
      }
    }
    ASSERT_EQ(survivor.period(), mgr.period()) << "crash_at " << crash_at;
    ChaChaRng enc_rng(4242);
    const Gelt m = mgr.params().group.random_element(enc_rng);
    const Ciphertext ct =
        encrypt(mgr.params(), mgr.public_key(), m, enc_rng);
    EXPECT_EQ(survivor.decrypt(ct), m) << "crash_at " << crash_at;
  }
}

TEST(StateStore, SecondOpenIsLockedOutWithoutTouchingTheStore) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  StateStore store = StateStore::open(fs, "store", f.opts);
  const Bytes wal_before = fs.read("store/wal.0");
  try {
    StateStore second = StateStore::open(fs, "store", f.opts);
    FAIL() << "second open must throw StoreLockedError";
  } catch (const StoreLockedError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("is locked by pid"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(::getpid())), std::string::npos) << msg;
  }
  // The loser backed off before reading or writing any store state.
  EXPECT_EQ(fs.read("store/wal.0"), wal_before);

  // Releasing the winner (here: via move, then destruction) frees the lock.
  { StateStore moved = std::move(store); }
  StateStore third = StateStore::open(fs, "store", f.opts);
  EXPECT_EQ(third.manager().save_state(), f.initial_state);
}

TEST(StateStore, CreateIsAlsoLockedOut) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  StateStore store = StateStore::open(fs, "store", f.opts);
  ChaChaRng rng(5);
  SecurityManager mgr(test::test_params(2), rng);
  EXPECT_THROW(StateStore::create(fs, "store", std::move(mgr), rng, f.opts),
               StoreLockedError);
}

TEST(StateStore, ProcessDeathReleasesTheLock) {
  // flock state dies with the holder: a power cut (or SIGKILL) must leave
  // the directory openable even though the LOCK file is still there.
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  StateStore store = StateStore::open(fs, "store", f.opts);
  MemFileIo cut = fs;  // disk image taken while the lock is held
  cut.crash();
  StateStore recovered = StateStore::open(cut, "store", f.opts);
  EXPECT_EQ(recovered.manager().save_state(), f.initial_state);
}

TEST(StateStore, BatchedCommitsDeferDurabilityUntilSync) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  StateStore store = StateStore::open(fs, "store", f.opts);
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);

  store.set_batching(true);
  const std::size_t wal_before = fs.read("store/wal.0").size();
  store.add_user(rng);
  store.add_user(rng);
  EXPECT_EQ(store.unsynced_records(), 2u);
  EXPECT_EQ(fs.read("store/wal.0").size(), wal_before)
      << "staged records must not reach the file before sync()";
  {
    // Nothing was acknowledged yet, so losing both records is correct.
    MemFileIo cut = fs;
    cut.crash();
    StateStore lost = StateStore::open(cut, "store", f.opts);
    EXPECT_EQ(lost.manager().save_state(), f.initial_state);
  }

  store.sync();
  EXPECT_EQ(store.unsynced_records(), 0u);
  EXPECT_GT(fs.read("store/wal.0").size(), wal_before);
  MemFileIo cut = fs;
  cut.crash();
  StateStore recovered = StateStore::open(cut, "store", f.opts);
  EXPECT_EQ(recovered.manager().save_state(), f.op_states[1]);
  EXPECT_EQ(recovered.recovery_report().replayed_records, 2u);
}

TEST(StateStore, TurningBatchingOffFlushesPendingRecords) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  StateStore store = StateStore::open(fs, "store", f.opts);
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  store.set_batching(true);
  store.add_user(rng);
  store.set_batching(false);
  EXPECT_EQ(store.unsynced_records(), 0u);
  MemFileIo cut = fs;
  cut.crash();
  StateStore recovered = StateStore::open(cut, "store", f.opts);
  EXPECT_EQ(recovered.manager().save_state(), f.op_states[0]);
}

// The review-found duplicate-frame hazard: sync() fails after the batch's
// append may already have landed. The process keeps running (think ENOSPC
// that later clears) — the store must fail-stop instead of re-appending
// the staged frames, because byte-identical duplicates break the HMAC
// chain and recovery would then truncate every LATER acked batch.
TEST(StateStore, FailedFlushPoisonsTheStoreInsteadOfDuplicatingFrames) {
  const ScriptFixture& f = fixture();

  // I/O ops of a crash-free open + one-record batch + sync: the last op is
  // the batch's fsync, the one before it the batch's single append.
  std::uint64_t total_ops = 0;
  {
    MemFileIo fs = f.base_fs;
    FaultyFileIo io(fs, FilePlan{});
    StateStore store = StateStore::open(io, "store", f.opts);
    ChaChaRng rng(kScriptSeed);
    script_base_manager(rng);
    store.set_batching(true);
    store.add_user(rng);
    store.sync();
    total_ops = io.fault_counters().mutating_ops;
  }
  ASSERT_GE(total_ops, 2u);

  // fail_at = append: nothing of the batch reached the file.
  // fail_at = fsync: the append landed but was never made durable.
  for (const std::uint64_t fail_at : {total_ops - 2, total_ops - 1}) {
    MemFileIo fs = f.base_fs;
    FilePlan plan;
    plan.seed = 4242 + fail_at;
    plan.crash_at = fail_at;
    FaultyFileIo io(fs, plan);
    {
      StateStore store = StateStore::open(io, "store", f.opts);
      ChaChaRng rng(kScriptSeed);
      script_base_manager(rng);
      store.set_batching(true);
      store.add_user(rng);
      EXPECT_THROW(store.sync(), CrashPoint) << "fail_at " << fail_at;
      EXPECT_TRUE(store.poisoned());

      // The faulty plan has fired, so any further I/O would SUCCEED — a
      // retry that re-appended pending_ would go through and corrupt the
      // chain. The poisoned store must refuse instead, touching nothing.
      const Bytes wal_after_failure = fs.read("store/wal.0");
      EXPECT_THROW(store.sync(), StorePoisonedError);
      EXPECT_THROW(store.add_user(rng), StorePoisonedError);
      EXPECT_THROW(store.snapshot(), StorePoisonedError);
      store.set_batching(false);  // the daemon's shutdown path: no flush
      EXPECT_EQ(fs.read("store/wal.0"), wal_after_failure)
          << "fail_at " << fail_at << ": a poisoned store wrote to the WAL";
    }

    // Whatever reached the file is a single valid chain prefix: reopening
    // recovers it (the NACKed record may be present — indeterminate, like
    // a crash — but never duplicated) and fsck is clean.
    const FsckReport fsck = fsck_store(fs, "store", /*repair=*/false);
    EXPECT_TRUE(fsck.ok) << "fail_at " << fail_at;
    StateStore recovered = StateStore::open(fs, "store", f.opts);
    const Bytes state = recovered.manager().save_state();
    if (fail_at == total_ops - 1) {
      EXPECT_EQ(state, f.op_states[0]) << "appended record lost";
    } else {
      EXPECT_EQ(state, f.initial_state) << "unappended record appeared";
    }
  }
}

// The group-commit crash matrix: the script runs in three batches (a
// sync() after ops 1, 3 and 5), and the process-model is killed at EVERY
// mutating I/O boundary — including inside a batch's single multi-record
// append. Recovery must land on a record-granular prefix that contains
// every mutation whose covering sync() returned; fsck must pass.
TEST(StateStore, GroupCommitCrashMatrixKeepsEveryAckedBatch) {
  const ScriptFixture& f = fixture();
  constexpr std::size_t kSyncAfter[] = {1, 3, 5};
  const auto is_sync_point = [&](std::size_t op) {
    return std::find(std::begin(kSyncAfter), std::end(kSyncAfter), op) !=
           std::end(kSyncAfter);
  };

  // I/O ops of a crash-free batched run.
  std::uint64_t total_ops = 0;
  {
    MemFileIo fs = f.base_fs;
    FaultyFileIo io(fs, FilePlan{});
    StateStore store = StateStore::open(io, "store", f.opts);
    ChaChaRng rng(kScriptSeed);
    script_base_manager(rng);
    store.set_batching(true);
    std::size_t op = 0;
    run_script(store, rng, [&] {
      if (is_sync_point(op)) store.sync();
      ++op;
    });
    store.set_batching(false);
    total_ops = io.fault_counters().mutating_ops;
  }
  ASSERT_GT(total_ops, 0u);

  for (std::uint64_t crash_at = 0; crash_at < total_ops; ++crash_at) {
    MemFileIo fs = f.base_fs;
    FilePlan plan;
    plan.seed = 9000 + crash_at;
    plan.crash_at = crash_at;
    FaultyFileIo io(fs, plan);

    std::size_t acked_ops = 0;  // ops covered by a completed sync()
    bool crashed = false;
    try {
      StateStore store = StateStore::open(io, "store", f.opts);
      ChaChaRng rng(kScriptSeed);
      script_base_manager(rng);
      store.set_batching(true);
      std::size_t op = 0;
      run_script(store, rng, [&] {
        if (is_sync_point(op)) {
          store.sync();
          acked_ops = op + 1;
        }
        ++op;
      });
      store.set_batching(false);
    } catch (const CrashPoint&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "crash_at " << crash_at;

    fs.crash();
    StateStore recovered = StateStore::open(fs, "store", f.opts);
    const Bytes state = recovered.manager().save_state();
    const std::size_t idx = state_index(f, state);
    ASSERT_NE(idx, static_cast<std::size_t>(-1))
        << "crash_at " << crash_at
        << ": recovered state is not a record-prefix of the script";
    const std::size_t min_records =
        acked_ops == 0 ? 0 : f.records_after_op[acked_ops - 1];
    EXPECT_GE(idx, min_records)
        << "crash_at " << crash_at << ": an acknowledged batch was lost";

    const FsckReport fsck = fsck_store(fs, "store", /*repair=*/false);
    EXPECT_TRUE(fsck.ok) << "crash_at " << crash_at;
  }
}

TEST(Fsck, CleanStoreChecksOut) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  const FsckReport r = fsck_store(fs, "store", /*repair=*/false);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.repaired);
  EXPECT_FALSE(r.unrecoverable);
  EXPECT_EQ(r.generation, 0u);
  EXPECT_EQ(r.wal_records, 0u);
  EXPECT_EQ(r.torn_tail_bytes, 0u);
  EXPECT_EQ(r.stale_files, 0u);
  EXPECT_TRUE(r.notes.empty());
}

TEST(Fsck, CheckModeReportsWithoutTouchingTheStore) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  fs.append("store/wal.0", Bytes(21, 0xDD));
  fs.write("store/snap.0.tmp", Bytes(4, 0));
  const Bytes wal_before = fs.read("store/wal.0");

  const FsckReport r = fsck_store(fs, "store", /*repair=*/false);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.unrecoverable);
  EXPECT_EQ(r.torn_tail_bytes, 21u);
  EXPECT_EQ(r.stale_files, 1u);
  EXPECT_FALSE(r.notes.empty());
  EXPECT_EQ(fs.read("store/wal.0"), wal_before);  // nothing was written
  EXPECT_TRUE(fs.exists("store/snap.0.tmp"));
}

TEST(Fsck, RepairModeTruncatesAndCleans) {
  const ScriptFixture& f = fixture();
  MemFileIo fs = f.base_fs;
  fs.append("store/wal.0", Bytes(21, 0xDD));
  fs.write("store/snap.0.tmp", Bytes(4, 0));

  const FsckReport r = fsck_store(fs, "store", /*repair=*/true);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.repaired);
  EXPECT_EQ(r.torn_tail_bytes, 21u);
  EXPECT_FALSE(fs.exists("store/snap.0.tmp"));

  const FsckReport clean = fsck_store(fs, "store", /*repair=*/false);
  EXPECT_TRUE(clean.ok);
  EXPECT_FALSE(clean.repaired);
}

TEST(Fsck, UnrecoverableOnBadKeyOrSnapshot) {
  const ScriptFixture& f = fixture();
  {
    MemFileIo fs = f.base_fs;
    Bytes key = fs.read("store/store.key");
    key[6] ^= 0xFF;
    fs.write("store/store.key", key);
    const FsckReport r = fsck_store(fs, "store", /*repair=*/false);
    EXPECT_TRUE(r.unrecoverable);
    EXPECT_FALSE(r.ok);
  }
  {
    MemFileIo fs = f.base_fs;
    Bytes snap = fs.read("store/snap.0");
    snap[snap.size() - 1] ^= 0x01;  // breaks the HMAC tag
    fs.write("store/snap.0", snap);
    const FsckReport check = fsck_store(fs, "store", /*repair=*/false);
    EXPECT_TRUE(check.unrecoverable);
    const FsckReport repair = fsck_store(fs, "store", /*repair=*/true);
    EXPECT_TRUE(repair.unrecoverable);
    EXPECT_FALSE(repair.ok);
  }
  MemFileIo empty;
  EXPECT_TRUE(fsck_store(empty, "missing", /*repair=*/false).unrecoverable);
}

// ---- sharded deployments (DESIGN.md Sect. 11) ---------------------------------

constexpr std::size_t kShards = 3;
constexpr std::uint64_t kShardSeed = 4242;

/// A 3-shard set with two durably acked users per shard. Built once; every
/// crash run starts from a copy of the returned filesystem.
MemFileIo sharded_base_fs() {
  MemFileIo fs;
  ChaChaRng rng(kShardSeed);
  const SystemParams sp = test::test_params(2, /*seed=*/kShardSeed);
  std::vector<SecurityManager> managers;
  for (std::size_t i = 0; i < kShards; ++i) managers.emplace_back(sp, rng);
  std::vector<StateStore> stores =
      create_shard_set(fs, "shards", std::move(managers), rng);
  for (StateStore& s : stores) {
    s.add_user(rng);  // unbatched: durable (acked) before the crash run
    s.add_user(rng);
  }
  return fs;
}

/// The two-phase cross-shard new-period, on raw stores: phase 1 stages
/// every shard's reset record in memory, phase 2 syncs shard by shard —
/// exactly the I/O schedule ShardRouter::new_period_all issues, so the
/// FaultyFileIo crash indices land between the phases and between the
/// per-shard syncs.
void run_two_phase_new_period(FileIo& io) {
  ChaChaRng rng(kShardSeed + 1);
  std::vector<StateStore> stores = open_shard_set(io, "shards", rng);
  for (StateStore& s : stores) s.set_batching(true);
  for (StateStore& s : stores) s.new_period(rng);  // phase 1: no file I/O
  for (StateStore& s : stores) s.sync();           // phase 2: commit
  for (StateStore& s : stores) s.set_batching(false);
}

TEST(ShardSet, CreateAndOpenRoundTrip) {
  MemFileIo fs = sharded_base_fs();
  EXPECT_TRUE(is_shard_root(fs, "shards"));
  EXPECT_FALSE(is_shard_root(fs, "shards/shard.0"));
  EXPECT_EQ(count_shards(fs, "shards"), kShards);

  ChaChaRng rng(1);
  ShardSetReport rep;
  const std::vector<StateStore> stores =
      open_shard_set(fs, "shards", rng, {}, &rep);
  EXPECT_EQ(rep.shards, kShards);
  EXPECT_EQ(rep.epoch, 0u);
  EXPECT_EQ(rep.rolled_forward, 0u);
  ASSERT_EQ(rep.recoveries.size(), kShards);
  for (const StateStore& s : stores) {
    EXPECT_EQ(s.manager().users().size(), 2u);
  }

  // A shard set is not a plain store and vice versa.
  EXPECT_THROW(StateStore::open(fs, "shards"), Error);
  MemFileIo plain;
  ChaChaRng rng2(2);
  SecurityManager mgr(test::test_params(2, /*seed=*/7), rng2);
  StateStore::create(plain, "store", std::move(mgr), rng2);
  EXPECT_THROW(open_shard_set(plain, "store", rng2), Error);
}

TEST(ShardSet, OpenLocksAllShardsOrNone) {
  MemFileIo fs = sharded_base_fs();
  ChaChaRng rng(1);
  {
    // Somebody holds ONE shard in the middle of the set...
    StateStore holder = StateStore::open(fs, "shards/shard.1");
    // ...so the set open must fail, releasing the locks it already took.
    EXPECT_THROW(open_shard_set(fs, "shards", rng), StoreLockedError);
  }
  // All-or-nothing: after the holder is gone, every shard (including
  // shard.0, locked and unwound during the failed attempt) opens cleanly.
  const std::vector<StateStore> stores = open_shard_set(fs, "shards", rng);
  EXPECT_EQ(stores.size(), kShards);
}

TEST(ShardSet, CrossShardNewPeriodCrashMatrixRecoversOneEpoch) {
  const MemFileIo base_fs = sharded_base_fs();

  // I/O ops of a crash-free open + two-phase barrier.
  std::uint64_t total_ops = 0;
  {
    MemFileIo fs = base_fs;
    FaultyFileIo io(fs, FilePlan{});
    run_two_phase_new_period(io);
    total_ops = io.fault_counters().mutating_ops;
  }
  ASSERT_GT(total_ops, 0u);

  for (std::uint64_t crash_at = 0; crash_at < total_ops; ++crash_at) {
    MemFileIo fs = base_fs;
    FilePlan plan;
    plan.seed = 9000 + crash_at;
    plan.crash_at = crash_at;
    FaultyFileIo io(fs, plan);
    bool crashed = false;
    try {
      run_two_phase_new_period(io);
    } catch (const CrashPoint&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "crash_at " << crash_at;

    // Power cut: volatile writes vanish, then the daemon restarts.
    fs.crash();
    ChaChaRng rng(7);
    ShardSetReport rep;
    const std::vector<StateStore> recovered =
        open_shard_set(fs, "shards", rng, {}, &rep);

    // The un-acked barrier either fully vanished (epoch 0) or was rolled
    // forward to completion (epoch 1) — never a mixed-epoch set.
    EXPECT_LE(rep.epoch, 1u) << "crash_at " << crash_at;
    for (const StateStore& s : recovered) {
      EXPECT_EQ(s.manager().period(), rep.epoch)
          << "crash_at " << crash_at << " shard " << s.dir();
      // Every durably acked mutation (the two adds per shard) survived.
      EXPECT_EQ(s.manager().users().size(), 2u) << "crash_at " << crash_at;
    }

    // The recovered set passes fsck shard by shard.
    for (std::size_t i = 0; i < kShards; ++i) {
      const FsckReport r =
          fsck_store(fs, "shards/" + shard_dir_name(i), /*repair=*/false);
      EXPECT_TRUE(r.ok) << "crash_at " << crash_at << " shard " << i;
      EXPECT_EQ(r.period, rep.epoch) << "crash_at " << crash_at;
    }
  }
}

// ---- replication (DESIGN.md Sect. 12) -----------------------------------------

/// A primary/follower pair sharing one HMAC key: the follower directory is
/// a clone of the primary's taken right after create() (the bootstrap
/// step), so shipped frames append verbatim and chain-verify.
struct ReplicaPair {
  MemFileIo pfs, ffs;
  std::optional<StateStore> prim, foll;

  explicit ReplicaPair(std::size_t snapshot_every = 1000) {
    StoreOptions opts;
    opts.snapshot_every = snapshot_every;
    ChaChaRng rng(kScriptSeed);
    SecurityManager mgr = script_base_manager(rng);
    ChaChaRng key_rng(1);
    prim.emplace(
        StateStore::create(pfs, "store", std::move(mgr), key_rng, opts));
    clone_store_files(pfs, ffs, "store");
    foll.emplace(StateStore::open(ffs, "store", opts));
  }

  /// Ships everything the follower is missing, exactly like the daemon's
  /// ReplicationSender: snapshot resync on a generation mismatch, then
  /// frames from the follower's record count.
  void ship_all() {
    if (foll->generation() != prim->generation()) {
      foll->replica_apply_snapshot(prim->generation(),
                                   prim->read_snapshot_frame());
    }
    const WalShipment ship = prim->read_frames_from(foll->wal_records());
    foll->replica_apply_frames(ship.generation, ship.start_record,
                               ship.frames);
  }

  void expect_identical() {
    EXPECT_EQ(foll->generation(), prim->generation());
    EXPECT_EQ(foll->wal_records(), prim->wal_records());
    EXPECT_EQ(foll->chain_head_hex(), prim->chain_head_hex());
    EXPECT_EQ(foll->manager().save_state(), prim->manager().save_state());
    const std::string wal =
        "store/wal." + std::to_string(prim->generation());
    EXPECT_EQ(ffs.read(wal), pfs.read(wal));
  }
};

TEST(Replication, ShippedFramesReplayToAnIdenticalReplica) {
  ReplicaPair p;
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);  // burn the setup draws
  run_script(*p.prim, rng, [&] {
    p.ship_all();
    p.expect_identical();
  });
  EXPECT_GT(p.prim->wal_records(), 0u);
}

TEST(Replication, DuplicateShipmentLeavesTheStoreByteIdentical) {
  ReplicaPair p;
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(*p.prim, rng, [] {});

  const WalShipment ship = p.prim->read_frames_from(0);
  ASSERT_GT(ship.records, 0u);
  const std::uint64_t acked =
      p.foll->replica_apply_frames(ship.generation, 0, ship.frames);
  EXPECT_EQ(acked, p.prim->wal_records());
  const Bytes wal_clean = p.ffs.read("store/wal.0");
  const Bytes state_clean = p.foll->manager().save_state();

  // Re-delivering the whole shipment (a retry after a lost ack) is a
  // structural skip: same ack, same bytes, same manager state.
  const std::uint64_t again =
      p.foll->replica_apply_frames(ship.generation, 0, ship.frames);
  EXPECT_EQ(again, acked);
  EXPECT_EQ(p.ffs.read("store/wal.0"), wal_clean);
  EXPECT_EQ(p.foll->manager().save_state(), state_clean);
  p.expect_identical();
}

TEST(Replication, TornFinalFrameAppliesThePrefixThenConverges) {
  ReplicaPair p;
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(*p.prim, rng, [] {});

  const WalShipment ship = p.prim->read_frames_from(0);
  ASSERT_GT(ship.records, 1u);
  // Cut the shipment mid-final-frame (a connection torn mid-send).
  Bytes torn(ship.frames.begin(), ship.frames.end() - 5);
  const std::uint64_t acked =
      p.foll->replica_apply_frames(ship.generation, 0, torn);
  EXPECT_EQ(acked, ship.records - 1);
  EXPECT_EQ(p.foll->wal_records(), ship.records - 1);

  // Full re-delivery from record 0: the already-held prefix is skipped,
  // the once-torn final frame lands whole, replicas converge.
  const std::uint64_t again =
      p.foll->replica_apply_frames(ship.generation, 0, ship.frames);
  EXPECT_EQ(again, ship.records);
  p.expect_identical();
}

TEST(Replication, CorruptFrameIsRejectedWithoutSideEffects) {
  ReplicaPair p;
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(*p.prim, rng, [] {});

  WalShipment ship = p.prim->read_frames_from(0);
  ASSERT_GT(ship.frames.size(), kWalFrameHeaderBytes);
  ship.frames[kWalFrameHeaderBytes] ^= 0x01;  // first record's payload
  const Bytes wal_before = p.ffs.read("store/wal.0");
  EXPECT_THROW(p.foll->replica_apply_frames(ship.generation, 0, ship.frames),
               DecodeError);
  EXPECT_EQ(p.foll->wal_records(), 0u);
  EXPECT_EQ(p.ffs.read("store/wal.0"), wal_before);
}

TEST(Replication, GapAndGenerationMismatchAreRejected) {
  ReplicaPair p;
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(*p.prim, rng, [] {});
  const WalShipment ship = p.prim->read_frames_from(0);

  // A shipment starting past the follower's head would hide lost records.
  EXPECT_THROW(p.foll->replica_apply_frames(ship.generation, 2, ship.frames),
               DecodeError);
  // A generation the follower is not on needs a snapshot resync instead.
  EXPECT_THROW(
      p.foll->replica_apply_frames(ship.generation + 1, 0, ship.frames),
      DecodeError);
  EXPECT_EQ(p.foll->wal_records(), 0u);
}

TEST(Replication, SnapshotShipmentResyncsAcrossARotation) {
  // snapshot_every=3 forces rotations mid-script; the lagging follower
  // must resync via the shipped snapshot frame, then tail the new WAL.
  ReplicaPair p(/*snapshot_every=*/3);
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(*p.prim, rng, [] {});
  ASSERT_GT(p.prim->generation(), 0u);

  p.ship_all();
  p.expect_identical();

  // Dup snapshot delivery (<= current generation) is an idempotent no-op.
  const Bytes state = p.foll->manager().save_state();
  p.foll->replica_apply_snapshot(p.prim->generation(),
                                 p.prim->read_snapshot_frame());
  EXPECT_EQ(p.foll->manager().save_state(), state);
  p.expect_identical();
}

TEST(Replication, InspectStoreWalComparesReplicas) {
  ReplicaPair p;
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(*p.prim, rng, [] {});

  // Ship everything but the final record: a lagging follower.
  const WalShipment all = p.prim->read_frames_from(0);
  const WalShipment head = p.prim->read_frames_from(0, all.frames.size() - 1);
  ASSERT_LT(head.records, all.records);
  p.foll->replica_apply_frames(head.generation, 0, head.frames);

  const WalInspection wp = inspect_store_wal(p.pfs, "store");
  const WalInspection wf = inspect_store_wal(p.ffs, "store");
  ASSERT_TRUE(wp.ok);
  ASSERT_TRUE(wf.ok);
  EXPECT_EQ(wp.generation, wf.generation);
  EXPECT_EQ(wp.records, all.records);
  EXPECT_EQ(wf.records, head.records);
  // The lagging WAL is a byte prefix of the longer one (fsck --replica's
  // agreement criterion)...
  EXPECT_TRUE(std::equal(wf.frames.begin(), wf.frames.end(),
                         wp.frames.begin()));
  EXPECT_NE(wp.chain_head_hex, wf.chain_head_hex);

  // ...while independent histories at the same generation are not: fork
  // the follower with a local mutation instead of the primary's stream.
  ChaChaRng fork_rng(4242);
  p.foll->add_user(fork_rng);
  const WalInspection forked = inspect_store_wal(p.ffs, "store");
  ASSERT_TRUE(forked.ok);
  EXPECT_EQ(forked.generation, wp.generation);
  const std::size_t shorter = std::min(forked.frames.size(),
                                       wp.frames.size());
  EXPECT_FALSE(std::equal(forked.frames.begin(),
                          forked.frames.begin() + shorter,
                          wp.frames.begin()));
}

TEST(Term, PersistsMonotonicallyAcrossReopen) {
  ReplicaPair p;
  EXPECT_EQ(p.prim->term(), 0u);  // no TERM file = term 0

  p.prim->set_term(7);
  EXPECT_EQ(p.prim->term(), 7u);
  p.prim->set_term(3);  // terms only move forward
  EXPECT_EQ(p.prim->term(), 7u);

  MemFileIo cut = p.pfs;
  cut.crash();  // set_term is durable the moment it returns
  StateStore reopened = StateStore::open(cut, "store");
  EXPECT_EQ(reopened.term(), 7u);
}

TEST(Term, CorruptOrAbsentFileReadsZero) {
  ReplicaPair p;
  p.prim->set_term(5);
  MemFileIo cut = p.pfs;
  cut.crash();  // also drops prim's LOCK so reopening is legal

  // Flip a byte of the persisted payload: the CRC rejects it and open()
  // degrades to term 0 (an old-primary restart then loses any election to
  // a node with a real term — safe, just conservative).
  const std::string path = std::string("store/") + StateStore::kTermFile;
  Bytes raw = cut.read(path);
  raw[raw.size() / 2] ^= 0x01;
  cut.write(path, raw);
  {
    StateStore reopened = StateStore::open(cut, "store");
    EXPECT_EQ(reopened.term(), 0u);
  }
  MemFileIo gone = p.pfs;
  gone.crash();
  gone.remove(path);
  StateStore reopened = StateStore::open(gone, "store");
  EXPECT_EQ(reopened.term(), 0u);
}

TEST(Term, ChainTagAtMatchesPrefixBoundaries) {
  ReplicaPair p;
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(*p.prim, rng, [] {});
  const std::uint64_t n = p.prim->wal_records();
  ASSERT_GT(n, 1u);

  EXPECT_EQ(p.prim->chain_tag_hex_at(n), p.prim->chain_head_hex());
  EXPECT_EQ(p.foll->chain_tag_hex_at(0), p.prim->chain_tag_hex_at(0));
  EXPECT_THROW(p.prim->chain_tag_hex_at(n + 1), DecodeError);

  // A follower holding a true prefix agrees with the primary at every
  // shared depth — the divergence probe the sender runs.
  const WalShipment all = p.prim->read_frames_from(0);
  const WalShipment head = p.prim->read_frames_from(0, all.frames.size() - 1);
  p.foll->replica_apply_frames(head.generation, 0, head.frames);
  for (std::uint64_t i = 0; i <= head.records; ++i) {
    EXPECT_EQ(p.foll->chain_tag_hex_at(i), p.prim->chain_tag_hex_at(i)) << i;
  }
}

TEST(Term, ReplicaTruncateDropsAForkedSuffixAndRejoins) {
  // A fenced ex-primary holds the shared history plus a forked (NACKed)
  // suffix; replica_truncate must cut exactly at the divergence point,
  // rebuild the manager from the retained prefix, and leave the store
  // able to tail the new primary's stream again.
  ReplicaPair p;
  ChaChaRng rng(kScriptSeed);
  script_base_manager(rng);
  run_script(*p.prim, rng, [&] { p.ship_all(); });
  p.expect_identical();
  const std::uint64_t shared = p.prim->wal_records();
  const Bytes shared_state = p.prim->manager().save_state();

  // The (about-to-be-fenced) primary writes two records past the fence...
  ChaChaRng fork_rng(4242);
  p.prim->add_user(fork_rng);
  p.prim->add_user(fork_rng);
  ASSERT_EQ(p.prim->wal_records(), shared + 2);
  // ...while the promoted follower's history moves on independently.
  ChaChaRng new_rng(8888);
  p.foll->add_user(new_rng);

  // Wrong tag (the new primary's head, not the tag at the cut): refused,
  // nothing changes.
  EXPECT_THROW(p.prim->replica_truncate(p.prim->generation(), shared,
                                        p.foll->chain_head_hex()),
               DecodeError);
  EXPECT_EQ(p.prim->wal_records(), shared + 2);

  // The sender's walk lands on the last agreeing depth.
  const std::uint64_t after = p.prim->replica_truncate(
      p.prim->generation(), shared, p.foll->chain_tag_hex_at(shared));
  EXPECT_EQ(after, shared);
  EXPECT_EQ(p.prim->wal_records(), shared);
  EXPECT_EQ(p.prim->chain_head_hex(), p.prim->chain_tag_hex_at(shared));
  EXPECT_EQ(p.prim->manager().save_state(), shared_state);

  // Re-seeded over the wire: the ex-primary tails the new history and the
  // pair is byte-identical again (roles swapped vs the fixture helpers).
  const WalShipment ship = p.foll->read_frames_from(shared);
  p.prim->replica_apply_frames(ship.generation, ship.start_record,
                               ship.frames);
  EXPECT_EQ(p.prim->chain_head_hex(), p.foll->chain_head_hex());
  EXPECT_EQ(p.prim->manager().save_state(), p.foll->manager().save_state());

  // And the truncation is durable, not an in-memory fiction.
  MemFileIo cut = p.pfs;
  cut.crash();
  StateStore reopened = StateStore::open(cut, "store");
  EXPECT_EQ(reopened.wal_records(), p.foll->wal_records());
  EXPECT_EQ(reopened.chain_head_hex(), p.foll->chain_head_hex());
}

}  // namespace
}  // namespace dfky
