// Forces the DFKY_OBS=OFF trace stubs in this translation unit (the
// on/off inline-namespace split makes that ODR-safe next to the ON TUs in
// the same binary) and checks every tracing construct the daemon uses
// compiles to an inert no-op. The stub TraceContext is deliberately
// field-free, so this TU also proves no instrumentation site reads trace
// state outside a DFKY_OBS block.
#ifdef DFKY_OBS_ENABLED
#undef DFKY_OBS_ENABLED
#endif
#define DFKY_OBS_ENABLED 0

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace dfky {
namespace {

TEST(TraceOff, ScopedTraceIsInert) {
  obs::ScopedTrace trace;
  EXPECT_FALSE(trace.active());
  trace.set_verb("add-user");
  trace.set_outcome(false);
  EXPECT_EQ(obs::current_trace(), nullptr);
}

TEST(TraceOff, MarksAndSwitchesAreNoOps) {
  obs::trace_mark(obs::SpanKind::kFsync);
  obs::TraceContext ctx;
  ctx.mark(obs::SpanKind::kAccept);
  ctx.mark_at(obs::SpanKind::kParse, 123);
  EXPECT_EQ(obs::TraceContext::now_ns(), 0u);

  obs::set_tracing(true);
  EXPECT_FALSE(obs::tracing_enabled());
  obs::set_slow_threshold_ns(5000);
  EXPECT_EQ(obs::slow_threshold_ns(), 0u);
}

TEST(TraceOff, ExportsAreEmpty) {
  obs::TraceContext ctx;
  obs::trace_record(ctx);
  EXPECT_TRUE(obs::recent_traces().empty());
  EXPECT_TRUE(obs::slow_traces().empty());
  EXPECT_EQ(obs::trace_json_line(ctx), "");
  EXPECT_EQ(obs::trace_jsonl(), "");
  EXPECT_EQ(obs::trace_jsonl(16), "");
  obs::trace_reset();  // must be callable
}

}  // namespace
}  // namespace dfky
