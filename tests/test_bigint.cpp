#include "bigint/bigint.h"

#include <gtest/gtest.h>

namespace dfky {
namespace {

TEST(Bigint, DefaultIsZero) {
  Bigint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.bit_length(), 0u);
}

TEST(Bigint, DecimalRoundTrip) {
  const Bigint v = Bigint::from_dec("123456789012345678901234567890");
  EXPECT_EQ(v.to_dec(), "123456789012345678901234567890");
}

TEST(Bigint, HexRoundTrip) {
  const Bigint v = Bigint::from_hex("deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe0123456789abcdef");
}

TEST(Bigint, NegativeDecimal) {
  const Bigint v = Bigint::from_dec("-42");
  EXPECT_EQ(v.sign(), -1);
  EXPECT_EQ(v.to_dec(), "-42");
}

TEST(Bigint, FromDecRejectsGarbage) {
  EXPECT_THROW(Bigint::from_dec("12x4"), DecodeError);
  EXPECT_THROW(Bigint::from_dec(""), DecodeError);
}

TEST(Bigint, FromHexRejectsGarbage) {
  EXPECT_THROW(Bigint::from_hex("zz"), DecodeError);
}

TEST(Bigint, BytesRoundTrip) {
  const Bigint v = Bigint::from_hex("0102030405060708090a");
  const Bytes b = v.to_bytes();
  ASSERT_EQ(b.size(), 10u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[9], 0x0a);
  EXPECT_EQ(Bigint::from_bytes(b), v);
}

TEST(Bigint, BytesOfZeroIsEmpty) {
  EXPECT_TRUE(Bigint(0).to_bytes().empty());
  EXPECT_TRUE(Bigint::from_bytes({}).is_zero());
}

TEST(Bigint, PaddedBytes) {
  const Bigint v(0x1234);
  const Bytes b = v.to_bytes_padded(4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x00);
  EXPECT_EQ(b[1], 0x00);
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0x34);
  EXPECT_THROW(Bigint::from_hex("ffffffffff").to_bytes_padded(4),
               ContractError);
}

TEST(Bigint, Arithmetic) {
  const Bigint a(1000), b(37);
  EXPECT_EQ(a + b, Bigint(1037));
  EXPECT_EQ(a - b, Bigint(963));
  EXPECT_EQ(a * b, Bigint(37000));
  EXPECT_EQ(a / b, Bigint(27));
  EXPECT_EQ(a % b, Bigint(1));
  EXPECT_EQ(-a, Bigint(-1000));
}

TEST(Bigint, DivisionByZeroThrows) {
  EXPECT_THROW(Bigint(1) / Bigint(0), MathError);
  EXPECT_THROW(Bigint(1) % Bigint(0), MathError);
}

TEST(Bigint, TruncatedDivisionSemantics) {
  EXPECT_EQ(Bigint(-7) / Bigint(2), Bigint(-3));
  EXPECT_EQ(Bigint(-7) % Bigint(2), Bigint(-1));
}

TEST(Bigint, ModIsCanonical) {
  EXPECT_EQ(Bigint(-7).mod(Bigint(5)), Bigint(3));
  EXPECT_EQ(Bigint(12).mod(Bigint(5)), Bigint(2));
  EXPECT_THROW(Bigint(1).mod(Bigint(0)), ContractError);
  EXPECT_THROW(Bigint(1).mod(Bigint(-5)), ContractError);
}

TEST(Bigint, Comparisons) {
  EXPECT_LT(Bigint(3), Bigint(5));
  EXPECT_GT(Bigint(5), Bigint(3));
  EXPECT_LE(Bigint(5), Bigint(5));
  EXPECT_EQ(Bigint(-2), Bigint(-2));
  EXPECT_LT(Bigint(-5), Bigint(0));
}

TEST(Bigint, Shifts) {
  EXPECT_EQ(Bigint(1) << 10, Bigint(1024));
  EXPECT_EQ(Bigint(1024) >> 3, Bigint(128));
}

TEST(Bigint, Powm) {
  // 3^20 mod 1000 = 3486784401 mod 1000 = 401
  EXPECT_EQ(Bigint::powm(Bigint(3), Bigint(20), Bigint(1000)), Bigint(401));
  EXPECT_EQ(Bigint::powm(Bigint(5), Bigint(0), Bigint(7)), Bigint(1));
}

TEST(Bigint, PowmNegativeExponent) {
  // 3^-1 mod 7 = 5; 3^-2 mod 7 = 25 mod 7 = 4.
  EXPECT_EQ(Bigint::powm(Bigint(3), Bigint(-1), Bigint(7)), Bigint(5));
  EXPECT_EQ(Bigint::powm(Bigint(3), Bigint(-2), Bigint(7)), Bigint(4));
}

TEST(Bigint, Invm) {
  const Bigint inv = Bigint::invm(Bigint(3), Bigint(7));
  EXPECT_EQ((inv * Bigint(3)).mod(Bigint(7)), Bigint(1));
  EXPECT_THROW(Bigint::invm(Bigint(6), Bigint(9)), MathError);
  EXPECT_THROW(Bigint::invm(Bigint(0), Bigint(7)), MathError);
}

TEST(Bigint, Gcd) {
  EXPECT_EQ(Bigint::gcd(Bigint(48), Bigint(36)), Bigint(12));
  EXPECT_EQ(Bigint::gcd(Bigint(17), Bigint(13)), Bigint(1));
}

TEST(Bigint, Primality) {
  EXPECT_TRUE(Bigint::from_dec("2147483647").probab_prime());  // 2^31 - 1
  EXPECT_FALSE(Bigint::from_dec("2147483649").probab_prime());
  EXPECT_EQ(Bigint(13).next_prime(), Bigint(17));
}

TEST(Bigint, Jacobi) {
  // (2/7) = 1 (2 is a QR mod 7: 3^2 = 2), (3/7) = -1.
  EXPECT_EQ(Bigint(2).jacobi(Bigint(7)), 1);
  EXPECT_EQ(Bigint(3).jacobi(Bigint(7)), -1);
  EXPECT_EQ(Bigint(7).jacobi(Bigint(7)), 0);
}

TEST(Bigint, BitAccess) {
  const Bigint v(0b101101);
  EXPECT_EQ(v.bit_length(), 6u);
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(2));
  EXPECT_TRUE(v.bit(5));
  EXPECT_FALSE(v.bit(6));
}

TEST(Bigint, ToU64) {
  EXPECT_EQ(Bigint::from_hex("ffffffffffffffff").to_u64(),
            0xffffffffffffffffULL);
  EXPECT_EQ(Bigint(0).to_u64(), 0u);
  EXPECT_THROW(Bigint::from_hex("10000000000000000").to_u64(), ContractError);
  EXPECT_THROW(Bigint(-1).to_u64(), ContractError);
}

TEST(Bigint, CopyAndMoveSemantics) {
  Bigint a = Bigint::from_dec("99999999999999999999");
  Bigint b = a;             // copy
  Bigint c = std::move(a);  // move
  EXPECT_EQ(b, c);
  a = b;  // reassign moved-from
  EXPECT_EQ(a, c);
}

TEST(Bigint, LargeMultiplicationKnownValue) {
  const Bigint a = Bigint::from_dec("123456789123456789123456789");
  const Bigint b = Bigint::from_dec("987654321987654321987654321");
  EXPECT_EQ((a * b).to_dec(),
            "121932631356500531591068431581771069347203169112635269");
}

}  // namespace
}  // namespace dfky
