#!/usr/bin/env bash
# Proves the DFKY_OBS=OFF compile-out contract for the tracing layer
# (DESIGN.md Sect. 13): configures a -DDFKY_OBS=OFF tree, builds dfkyd,
# and asserts the binary contains NO tracing implementation symbols —
# trace.cpp must be preprocessed away entirely, and every call site must
# bind to the inert header stubs. The ON-side sanity leg asserts the same
# grep DOES fire on the regular build's dfkyd, so a renamed namespace
# can't silently turn the check into a no-op.
#
#   tests/obs_off_build_check.sh <on-dfkyd> [off-build-dir]
#
# The OFF tree is kept between runs (default: <repo>/build-obs-off) so
# reruns are incremental.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
on_dfkyd="$(readlink -f "$1")"
build="${2:-$repo/build-obs-off}"

fail() { echo "obs_off_build_check: $1" >&2; exit 1; }

# The tracing layer's ON-side symbols all live in the `on` inline
# namespace; the OFF stubs live in `off` and carry no state worth a
# definition after inlining — but only `on` symbols are contractual.
pattern='dfky::obs::on::(ScopedTrace|TraceContext|trace_mark|trace_record|trace_jsonl|trace_json_line|recent_traces|slow_traces|trace_reset|set_tracing|set_slow_threshold_ns)'

# grep consumes all input (no -q): -q would exit at the first match and
# SIGPIPE nm, which pipefail turns into a spurious failure.
nm -C "$on_dfkyd" | grep -E "$pattern" > /dev/null \
  || fail "sanity leg: the ON build's dfkyd has no trace symbols — the \
symbol pattern is stale and the check below proves nothing"

cmake -S "$repo" -B "$build" -DDFKY_OBS=OFF -DCMAKE_BUILD_TYPE=Release \
  > /dev/null
cmake --build "$build" -j"$(nproc)" --target dfkyd > /dev/null

if nm -C "$build/tools/dfkyd" | grep -E "$pattern"; then
  fail "DFKY_OBS=OFF dfkyd still contains tracing symbols (above)"
fi

echo "obs_off_build_check: ok (no trace symbols in $build/tools/dfkyd)"
