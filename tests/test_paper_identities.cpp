// Direct verification of the algebraic identities the paper's tracing
// section rests on (Sect. 6.3.2 and Lemma 7):
//
//   * A . B = H, where A holds the users' leap-vector tails, B is the slot
//     Vandermonde (columns z^1..z^v) and H_{j,k} = -lambda0^{(j)} x_j^k;
//   * the code C = { c : c . H = 0 } equals the GRS code C' of Lemma 7 with
//     multipliers -lambda_j / lambda0^{(j)} and dimension n - v;
//   * C has distance v + 1 (via its MDS parameters);
//   * a pirate tail delta' = phi . A yields delta'' = phi . H (Eq. 35/36).
#include <gtest/gtest.h>

#include "codes/grs.h"
#include "linalg/gauss.h"
#include "poly/leap_vector.h"
#include "rng/chacha_rng.h"
#include "test_util.h"
#include "tracing/nonblackbox.h"

namespace dfky {
namespace {

struct World {
  Zq f = test::test_zq();
  std::vector<Bigint> zs;      // slot identities z_1..z_v
  std::vector<Bigint> xs;      // user values x_1..x_n
  std::vector<Bigint> lambda0;  // lambda0^{(j)} per user
  Matrix a, b, h;

  World(std::size_t v, std::size_t n, std::uint64_t seed)
      : a(f, n, v), b(f, v, v), h(f, n, v) {
    ChaChaRng rng(seed);
    for (std::size_t l = 0; l < v; ++l) {
      zs.push_back(Bigint(static_cast<long>(l + 1)));
    }
    while (xs.size() < n) {
      Bigint x = rng.uniform_nonzero_below(f.modulus());
      if (x <= Bigint(static_cast<long>(v))) continue;
      bool dup = false;
      for (const Bigint& y : xs) {
        if (x == y) dup = true;
      }
      if (!dup) xs.push_back(std::move(x));
    }
    // A: row j = lambda tail of user j; also collect lambda0.
    for (std::size_t j = 0; j < n; ++j) {
      const LeapCoefficients lc = leap_coefficients(f, xs[j], zs);
      lambda0.push_back(lc.lambda0);
      for (std::size_t l = 0; l < v; ++l) a.at(j, l) = lc.lambdas[l];
    }
    // B: columns z^1..z^v.
    for (std::size_t l = 0; l < v; ++l) {
      Bigint pw = zs[l];
      for (std::size_t k = 0; k < v; ++k) {
        b.at(l, k) = pw;
        pw = f.mul(pw, zs[l]);
      }
    }
    // H: -lambda0^{(j)} x_j^k.
    for (std::size_t j = 0; j < n; ++j) {
      Bigint pw = xs[j];
      for (std::size_t k = 0; k < v; ++k) {
        h.at(j, k) = f.neg(f.mul(lambda0[j], pw));
        pw = f.mul(pw, xs[j]);
      }
    }
  }
};

struct IdCase {
  std::size_t v, n;
  std::uint64_t seed;
};

class PaperIdentities : public ::testing::TestWithParam<IdCase> {};

TEST_P(PaperIdentities, AB_equals_H) {
  const auto [v, n, seed] = GetParam();
  World w(v, n, seed);
  EXPECT_EQ(w.a * w.b, w.h);
}

TEST_P(PaperIdentities, GrsCodewordsLieInKernelOfH) {
  // Lemma 7, direction C' subseteq C: every GRS codeword c satisfies
  // c . H = 0.
  const auto [v, n, seed] = GetParam();
  if (n <= v) GTEST_SKIP();
  World w(v, n, seed);
  ChaChaRng rng(seed ^ 0xfeed);
  const std::vector<Bigint> lambda_full =
      lagrange_coefficients_at_zero(w.f, w.xs);
  std::vector<Bigint> ws(n);
  for (std::size_t j = 0; j < n; ++j) {
    ws[j] = w.f.neg(w.f.div(lambda_full[j], w.lambda0[j]));
  }
  const GrsCode code(w.f, w.xs, ws, n - v);
  EXPECT_EQ(code.distance(), v + 1);  // Lemma 7(2)
  const Polynomial msg = Polynomial::random(w.f, n - v - 1, rng);
  const auto word = code.encode(msg);
  const auto syndrome = w.h.transposed().right_mul(word);
  for (const Bigint& s : syndrome) EXPECT_TRUE(s.is_zero());
}

TEST_P(PaperIdentities, KernelOfHHasGrsDimension) {
  // Lemma 7, dimension argument: rank(H) = v so dim C = n - v = dim C'.
  const auto [v, n, seed] = GetParam();
  if (n <= v) GTEST_SKIP();
  World w(v, n, seed);
  EXPECT_EQ(rank(w.h), v);
}

TEST_P(PaperIdentities, PirateTailSyndromeChain) {
  // Eq. (35)/(36): delta' = phi . A  ==>  delta'' = delta' . B = phi . H.
  const auto [v, n, seed] = GetParam();
  World w(v, n, seed);
  ChaChaRng rng(seed ^ 0xbeef);
  std::vector<Bigint> phi(n, Bigint(0));
  // A sparse phi of weight min(3, n).
  for (std::size_t j = 0; j < std::min<std::size_t>(3, n); ++j) {
    phi[(j * 7) % n] = rng.uniform_nonzero_below(w.f.modulus());
  }
  const auto delta_tail = w.a.left_mul(phi);
  const auto via_b = tracing_syndromes(w.f, w.zs, delta_tail);
  const auto via_h = w.h.left_mul(phi);
  EXPECT_EQ(via_b, via_h);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PaperIdentities,
                         ::testing::Values(IdCase{2, 5, 1}, IdCase{3, 8, 2},
                                           IdCase{4, 10, 3}, IdCase{6, 9, 4},
                                           IdCase{8, 20, 5},
                                           IdCase{12, 16, 6}));

}  // namespace
}  // namespace dfky
