#include "group/fixed_base.h"

#include <gtest/gtest.h>

#include "core/scheme.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

class FixedBaseWindows : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FixedBaseWindows, MatchesPlainPow) {
  const Group g = test::test_group();
  ChaChaRng rng(30001);
  const Gelt base = g.random_element(rng);
  const FixedBaseTable table(g, base, GetParam());
  for (int i = 0; i < 20; ++i) {
    const Bigint e = g.random_exponent(rng);
    EXPECT_EQ(table.pow(g, e), g.pow(base, e));
  }
}

TEST_P(FixedBaseWindows, EdgeExponents) {
  const Group g = test::test_group();
  ChaChaRng rng(30002);
  const Gelt base = g.random_element(rng);
  const FixedBaseTable table(g, base, GetParam());
  EXPECT_EQ(table.pow(g, Bigint(0)), g.one());
  EXPECT_EQ(table.pow(g, Bigint(1)), base);
  EXPECT_EQ(table.pow(g, g.order()), g.one());
  EXPECT_EQ(table.pow(g, g.order() - Bigint(1)), g.inv(base));
  EXPECT_EQ(table.pow(g, Bigint(-2)), g.inv(g.mul(base, base)));
}

INSTANTIATE_TEST_SUITE_P(Windows, FixedBaseWindows,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(FixedBase, RejectsBadWindow) {
  const Group g = test::test_group();
  EXPECT_THROW(FixedBaseTable(g, g.generator(), 0), ContractError);
  EXPECT_THROW(FixedBaseTable(g, g.generator(), 9), ContractError);
}

TEST(FixedBase, TableSizeMatchesGeometry) {
  const Group g = test::test_group();  // 127-bit order
  const FixedBaseTable table(g, g.generator(), 4);
  const std::size_t digits = (g.order().bit_length() + 3) / 4;
  EXPECT_EQ(table.table_size(), digits * 15);
}

TEST(FixedBase, WorksOnCurves) {
  const Group g{CurveSpec::secp256k1()};
  ChaChaRng rng(30003);
  const FixedBaseTable table(g, g.generator(), 4);
  for (int i = 0; i < 5; ++i) {
    const Bigint e = g.random_exponent(rng);
    EXPECT_EQ(table.pow(g, e), g.pow_g(e));
  }
}

TEST(Encryptor, CiphertextsDecryptLikePlainEncrypt) {
  ChaChaRng rng(30004);
  const SystemParams sp = test::test_params(6, 30005);
  const SetupResult s = setup(sp, rng);
  const Encryptor enc(sp, s.pk);
  const UserKey sk = issue_user_key(sp, s.msk, Bigint(4242), 0);
  for (int i = 0; i < 5; ++i) {
    const Gelt m = sp.group.random_element(rng);
    const Ciphertext ct = enc.encrypt(m, rng);
    EXPECT_EQ(decrypt(sp, sk, ct), m);
  }
}

// Any fixed group element, for the determinism test below.
Gelt encode_mock(const SystemParams& sp) {
  return sp.group.pow_g(Bigint(12345));
}

TEST(Encryptor, MatchesPlainEncryptWithSameRandomness) {
  // Feeding identical PRG streams, Encryptor and encrypt() must produce the
  // exact same ciphertext (it is the same algorithm, just precomputed).
  const SystemParams sp = test::test_params(4, 30006);
  ChaChaRng rng_setup(30007);
  const SetupResult s = setup(sp, rng_setup);
  ChaChaRng r1(555);
  ChaChaRng r2(555);
  const Gelt m = encode_mock(sp);
  const Ciphertext a = encrypt(sp, s.pk, m, r1);
  const Encryptor enc(sp, s.pk);
  const Ciphertext b = enc.encrypt(m, r2);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.u2, b.u2);
  EXPECT_EQ(a.w, b.w);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].hr, b.slots[i].hr);
  }
}

}  // namespace
}  // namespace dfky
