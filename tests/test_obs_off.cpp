// Forces the DFKY_OBS=OFF stubs in this translation unit (regardless of how
// the build was configured — the `on`/`off` inline-namespace split makes
// that ODR-safe) and checks that every instrumentation construct compiles
// to a no-op: no state, no output, no side effects.
#ifdef DFKY_OBS_ENABLED
#undef DFKY_OBS_ENABLED
#endif
#define DFKY_OBS_ENABLED 0

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace dfky {
namespace {

static_assert(!obs::enabled(), "this TU must see the stub layer");

TEST(ObsOff, StubsCarryNoState) {
  obs::Counter& c = obs::counter("off_counter", {{"k", "v"}});
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge& g = obs::gauge("off_gauge");
  g.set(42);
  g.add(7);
  EXPECT_EQ(g.value(), 0);

  obs::Histogram& h = obs::histogram("off_hist", {}, {1, 2, 3});
  h.observe(99);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  const auto s = h.snapshot();
  EXPECT_TRUE(s.bounds.empty());
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(ObsOff, RegistryExportsNothing) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.emit({.name = "off_event", .period = 1, .user = -1, .detail = "", .value = 0});
  obs::event({.name = "off_event2", .period = -1, .user = -1, .detail = "", .value = 0});
  EXPECT_TRUE(reg.events().empty());
  EXPECT_EQ(reg.prometheus(), "");
  EXPECT_EQ(reg.jsonl(), "");
  reg.reset();  // must be callable
}

TEST(ObsOff, MacrosExpandToNothing) {
  int touched = 0;
  // The whole statement list is compiled out, so `touched` never moves.
  DFKY_OBS(touched = 1; obs::counter("off_macro").inc(););
  EXPECT_EQ(touched, 0);

  DFKY_OBS_TIMER(span, "off_timer", {{"path", "x"}});
  // `span` is not declared in the OFF expansion; shadowing is legal.
  const int span = 5;
  EXPECT_EQ(span, 5);
}

TEST(ObsOff, ScopedTimerIsInert) {
  obs::Histogram& h = obs::histogram("off_timer_hist");
  { obs::ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace dfky
