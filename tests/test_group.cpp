#include <gtest/gtest.h>

#include "group/encoding.h"
#include "group/params.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

TEST(GroupParams, EmbeddedSetsValidate) {
  for (ParamId id : {ParamId::kTest128, ParamId::kSec256, ParamId::kSec512,
                     ParamId::kSec1024, ParamId::kSec2048}) {
    EXPECT_NO_THROW(GroupParams::named(id).validate())
        << static_cast<int>(id);
  }
}

TEST(GroupParams, BitLengths) {
  EXPECT_EQ(GroupParams::named(ParamId::kTest128).p.bit_length(), 128u);
  EXPECT_EQ(GroupParams::named(ParamId::kSec512).p.bit_length(), 512u);
  EXPECT_EQ(GroupParams::named(ParamId::kSec1024).p.bit_length(), 1024u);
  EXPECT_EQ(GroupParams::named(ParamId::kSec2048).p.bit_length(), 2048u);
}

TEST(GroupParams, RuntimeGeneration) {
  ChaChaRng rng(41);
  const GroupParams gp = GroupParams::generate(rng, 64);
  EXPECT_NO_THROW(gp.validate());
  EXPECT_EQ(gp.p.bit_length(), 64u);
}

TEST(Group, GeneratorHasOrderQ) {
  const Group g = test::test_group();
  EXPECT_EQ(g.pow_g(g.order()), g.one());
  EXPECT_FALSE(g.pow_g(Bigint(1)) == g.one());
}

TEST(Group, MulPowConsistency) {
  const Group g = test::test_group();
  const Gelt a = g.pow_g(Bigint(12345));
  const Gelt b = g.pow_g(Bigint(67890));
  EXPECT_EQ(g.mul(a, b), g.pow_g(Bigint(12345 + 67890)));
  EXPECT_EQ(g.pow(a, Bigint(3)), g.mul(g.mul(a, a), a));
}

TEST(Group, InverseAndDivision) {
  const Group g = test::test_group();
  const Gelt a = g.pow_g(Bigint(999));
  EXPECT_EQ(g.mul(a, g.inv(a)), g.one());
  EXPECT_EQ(g.div(a, a), g.one());
}

TEST(Group, ExponentsReducedModOrder) {
  const Group g = test::test_group();
  const Gelt a = g.pow_g(Bigint(5));
  EXPECT_EQ(g.pow(a, g.order() + Bigint(3)), g.pow(a, Bigint(3)));
  EXPECT_EQ(g.pow(a, Bigint(-1)), g.inv(a));
}

TEST(Group, MembershipTest) {
  const Group g = test::test_group();
  EXPECT_TRUE(g.is_element(g.generator()));
  EXPECT_TRUE(g.is_element(g.one()));
  EXPECT_FALSE(g.is_element(Gelt(Bigint(0))));
  EXPECT_FALSE(g.is_element(Gelt(g.p())));
  // A non-residue: the QR subgroup has index 2, so some value fails.
  ChaChaRng rng(42);
  bool found_nonmember = false;
  for (int i = 0; i < 64 && !found_nonmember; ++i) {
    const Bigint v = rng.uniform_nonzero_below(g.p());
    if (!g.is_element(Gelt(v))) found_nonmember = true;
  }
  EXPECT_TRUE(found_nonmember);
}

TEST(Group, ElementFromValidates) {
  const Group g = test::test_group();
  EXPECT_THROW(g.element_from(Bigint(0)), ContractError);
  EXPECT_NO_THROW(g.element_from(g.generator().value()));
}

TEST(Group, RandomElementsAreMembers) {
  const Group g = test::test_group();
  ChaChaRng rng(43);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(g.is_element(g.random_element(rng)));
  }
}

TEST(Group, RandomElementOrderQ) {
  const Group g = test::test_group();
  ChaChaRng rng(44);
  const Gelt e = g.random_element(rng);
  EXPECT_EQ(g.pow(e, g.order()), g.one());
}

TEST(Multiexp, MatchesNaive) {
  const Group g = test::test_group();
  ChaChaRng rng(45);
  for (std::size_t n : {0u, 1u, 2u, 5u, 12u}) {
    std::vector<Gelt> bases;
    std::vector<Bigint> exps;
    Gelt expect = g.one();
    for (std::size_t i = 0; i < n; ++i) {
      bases.push_back(g.random_element(rng));
      exps.push_back(g.random_exponent(rng));
      expect = g.mul(expect, g.pow(bases[i], exps[i]));
    }
    EXPECT_EQ(multiexp(g, bases, exps), expect) << "n=" << n;
  }
}

TEST(Multiexp, SizeMismatchThrows) {
  const Group g = test::test_group();
  std::vector<Gelt> bases = {g.generator()};
  std::vector<Bigint> exps;
  EXPECT_THROW(multiexp(g, bases, exps), ContractError);
}

TEST(Multiexp, ZeroExponents) {
  const Group g = test::test_group();
  std::vector<Gelt> bases = {g.generator(), g.generator()};
  std::vector<Bigint> exps = {Bigint(0), Bigint(0)};
  EXPECT_EQ(multiexp(g, bases, exps), g.one());
}

// ---- enc / enc^-1 (paper Sect. 4) -------------------------------------------

TEST(Encoding, RoundTripSmallValues) {
  const Group g = test::test_group();
  for (long a : {0L, 1L, 2L, 42L, 100000L}) {
    const Gelt e = encode_to_group(g, Bigint(a));
    EXPECT_TRUE(g.is_element(e));
    EXPECT_EQ(decode_from_group(g, e), Bigint(a));
  }
}

TEST(Encoding, RoundTripRandomValues) {
  const Group g = test::test_group();
  ChaChaRng rng(46);
  for (int i = 0; i < 50; ++i) {
    const Bigint a = rng.uniform_below(g.order());
    EXPECT_EQ(decode_from_group(g, encode_to_group(g, a)), a);
  }
}

TEST(Encoding, BoundaryValue) {
  const Group g = test::test_group();
  const Bigint max = g.order() - Bigint(1);
  EXPECT_EQ(decode_from_group(g, encode_to_group(g, max)), max);
}

TEST(Encoding, OutOfRangeRejected) {
  const Group g = test::test_group();
  EXPECT_THROW(encode_to_group(g, g.order()), ContractError);
  EXPECT_THROW(encode_to_group(g, Bigint(-1)), ContractError);
}

TEST(Encoding, DecodeRejectsNonElement) {
  const Group g = test::test_group();
  EXPECT_THROW(decode_from_group(g, Gelt(Bigint(0))), DecodeError);
}

TEST(SystemParams, CreateProducesDistinctGenerators) {
  ChaChaRng rng(47);
  const SystemParams sp = SystemParams::create(test::test_group(), 4, rng);
  EXPECT_FALSE(sp.g == sp.g2);
  EXPECT_TRUE(sp.group.is_element(sp.g));
  EXPECT_TRUE(sp.group.is_element(sp.g2));
  EXPECT_EQ(sp.max_collusion(), 2u);
}

TEST(SystemParams, RejectsZeroSaturation) {
  ChaChaRng rng(48);
  EXPECT_THROW(SystemParams::create(test::test_group(), 0, rng),
               ContractError);
}

}  // namespace
}  // namespace dfky
