// Observability layer: registry semantics, thread-safety of the hot-path
// update operations (run under TSan via tools/sanitize_check.sh --tsan),
// exporter golden output, and the JSON helper underneath `dfky_cli stats`
// and the bench schema checker.
#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "rng/chacha_rng.h"
#include "store/file_io.h"
#include "store/store.h"
#include "test_util.h"

namespace dfky {
namespace {

// Everything up to the json.h section exercises the real (ON) layer and is
// compiled out of a -DDFKY_OBS=OFF build, where the same binary still runs
// the stub contract (test_obs_off.cpp) and the JSON tests below.
#if DFKY_OBS_ENABLED

// The registry is process-wide and shared with every other test in this
// binary, so assertions use series with test-local names and, for golden
// output, filter the export down to those series (ordering within the
// filtered subset is still the exporter's deterministic order).
std::vector<std::string> lines_with_prefix(const std::string& text,
                                           const std::string& prefix) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) out.push_back(line);
  }
  return out;
}

std::vector<std::string> jsonl_lines_naming(const std::string& text,
                                            const std::string& name_prefix) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  const std::string needle = "\"name\":\"" + name_prefix;
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) out.push_back(line);
  }
  return out;
}

TEST(ObsCounter, IncrementsAndLabelsSeparateSeries) {
  obs::Counter& a = obs::counter("t_counter_basic", {{"k", "a"}});
  obs::Counter& b = obs::counter("t_counter_basic", {{"k", "b"}});
  const std::uint64_t a0 = a.value(), b0 = b.value();
  a.inc();
  a.inc(4);
  b.inc();
  EXPECT_EQ(a.value(), a0 + 5);
  EXPECT_EQ(b.value(), b0 + 1);
  // Same name+labels -> same series object.
  EXPECT_EQ(&a, &obs::counter("t_counter_basic", {{"k", "a"}}));
  // Label order must not matter for identity.
  obs::Counter& c1 = obs::counter("t_counter_two", {{"x", "1"}, {"y", "2"}});
  obs::Counter& c2 = obs::counter("t_counter_two", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&c1, &c2);
}

TEST(ObsGauge, SetAndAdd) {
  obs::Gauge& g = obs::gauge("t_gauge");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(ObsHistogram, BucketsAndQuantiles) {
  obs::Histogram& h =
      obs::histogram("t_hist_buckets", {}, {10, 100, 1000});
  h.observe(5);     // <= 10
  h.observe(50);    // <= 100
  h.observe(500);   // <= 1000
  h.observe(5000);  // +Inf
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.cumulative_counts.size(), 4u);
  EXPECT_EQ(s.cumulative_counts[0], 1u);
  EXPECT_EQ(s.cumulative_counts[1], 2u);
  EXPECT_EQ(s.cumulative_counts[2], 3u);
  EXPECT_EQ(s.cumulative_counts[3], 4u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 5555u);
  // Quantiles are bucket-interpolated: p25 lands in the first bucket.
  EXPECT_LE(s.quantile(0.25), 10.0);
  EXPECT_GT(s.quantile(0.95), 100.0);
  // Empty histogram.
  obs::Histogram& e = obs::histogram("t_hist_empty", {}, {10});
  EXPECT_EQ(e.snapshot().quantile(0.5), 0.0);
}

TEST(ObsScopedTimer, RecordsElapsedNanoseconds) {
  obs::Histogram& h = obs::histogram("t_timer_hist");
  const std::uint64_t n0 = h.count();
  {
    obs::ScopedTimer t(h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), n0 + 1);
  EXPECT_GT(h.sum(), 0u);
}

TEST(ObsMacros, StatementFormsCompileAndRun) {
  DFKY_OBS(static obs::Counter& c = obs::counter("t_macro_counter");
           c.inc(););
  DFKY_OBS_TIMER(span, "t_macro_timer");
  EXPECT_GE(obs::counter("t_macro_counter").value(), 1u);
}

TEST(ObsConcurrency, CountersFromManyThreads) {
  obs::Counter& c = obs::counter("t_conc_counter");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), before + std::uint64_t(kThreads) * kIters);
}

TEST(ObsConcurrency, HistogramsAndSeriesCreationFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      // Exercise create-on-first-use racing with updates: half the threads
      // fetch the series inside the loop.
      obs::Histogram& h = obs::histogram("t_conc_hist", {}, {100, 10000});
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          h.observe(std::uint64_t(i));
        } else {
          obs::histogram("t_conc_hist", {}, {100, 10000})
              .observe(std::uint64_t(i));
        }
        obs::gauge("t_conc_gauge").set(i);
      }
    });
  }
  for (auto& t : ts) t.join();
  const auto s = obs::histogram("t_conc_hist", {}, {100, 10000}).snapshot();
  EXPECT_EQ(s.count, std::uint64_t(kThreads) * kIters);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i + 1 < s.cumulative_counts.size(); ++i) {
    EXPECT_LE(s.cumulative_counts[i], s.cumulative_counts[i + 1]);
  }
  total = s.cumulative_counts.back();
  EXPECT_EQ(total, s.count);
}

TEST(ObsEvents, RingKeepsNewestAndCountsDrops) {
  auto& reg = obs::MetricsRegistry::instance();
  const std::size_t before = reg.events().size();
  reg.emit({.name = "t_ev", .period = 3, .user = 7, .detail = "x", .value = 9});
  const auto evs = reg.events();
  ASSERT_GT(evs.size(), before);
  const obs::Event& last = evs.back();
  EXPECT_EQ(last.name, "t_ev");
  EXPECT_EQ(last.period, 3);
  EXPECT_EQ(last.user, 7);
  EXPECT_EQ(last.detail, "x");
  EXPECT_EQ(last.value, 9);

  for (std::size_t i = 0; i < obs::MetricsRegistry::kEventCapacity + 8; ++i) {
    reg.emit({.name = "t_ev_flood", .period = -1, .user = -1, .detail = "", .value = 0});
  }
  EXPECT_EQ(reg.events().size(), obs::MetricsRegistry::kEventCapacity);
  // The overflow is itself observable.
  EXPECT_NE(reg.jsonl().find("dfky_obs_events_dropped_total"),
            std::string::npos);
}

TEST(ObsExporters, PrometheusGolden) {
  obs::counter("t_golden_total", {{"kind", "x"}}).inc(3);
  obs::gauge("t_golden_gauge").set(-2);
  obs::Histogram& h = obs::histogram("t_golden_ns", {}, {10, 100});
  h.observe(4);
  h.observe(40);
  h.observe(400);

  const std::string prom = obs::MetricsRegistry::instance().prometheus();
  // Sections in exporter order: counters, gauges, histograms.
  const std::vector<std::string> expected = {
      "t_golden_total{kind=\"x\"} 3",
      "t_golden_gauge -2",
      "t_golden_ns_bucket{le=\"10\"} 1",
      "t_golden_ns_bucket{le=\"100\"} 2",
      "t_golden_ns_bucket{le=\"+Inf\"} 3",
      "t_golden_ns_sum 444",
      "t_golden_ns_count 3",
  };
  EXPECT_EQ(lines_with_prefix(prom, "t_golden_"), expected);
}

TEST(ObsExporters, FailoverSeriesGolden) {
  // The self-healing cluster's scrape surface (DESIGN.md Sect. 14), pinned
  // by name: dashboards and dfky_top key on these exact series.
  obs::gauge("dfky_repl_term").set(4);
  obs::gauge("dfky_watchdog_state").set(1);  // watching
  obs::counter("dfky_failovers_total").inc();
  obs::counter("dfky_fenced_writes_total").inc(2);

  const std::string prom = obs::MetricsRegistry::instance().prometheus();
  EXPECT_EQ(lines_with_prefix(prom, "dfky_repl_term"),
            std::vector<std::string>{"dfky_repl_term 4"});
  EXPECT_EQ(lines_with_prefix(prom, "dfky_watchdog_state"),
            std::vector<std::string>{"dfky_watchdog_state 1"});
  EXPECT_EQ(lines_with_prefix(prom, "dfky_failovers_total"),
            std::vector<std::string>{"dfky_failovers_total 1"});
  EXPECT_EQ(lines_with_prefix(prom, "dfky_fenced_writes_total"),
            std::vector<std::string>{"dfky_fenced_writes_total 2"});
}

TEST(ObsExporters, JsonlGoldenAndParsesBack) {
  obs::counter("t_jgold_total", {{"b", "2"}, {"a", "1"}}).inc(5);
  const std::string out = obs::MetricsRegistry::instance().jsonl();
  ASSERT_FALSE(out.empty());
  // Meta line first.
  EXPECT_EQ(out.rfind("{\"kind\":\"meta\",\"obs\":\"on\"", 0), 0u);
  const auto mine = jsonl_lines_naming(out, "t_jgold_total");
  ASSERT_EQ(mine.size(), 1u);
  // Labels are sorted by key regardless of call-site order.
  EXPECT_EQ(mine[0],
            "{\"kind\":\"counter\",\"name\":\"t_jgold_total\","
            "\"labels\":{\"a\":\"1\",\"b\":\"2\"},\"value\":5}");
  // Every line of the export is valid JSON.
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_NO_THROW(json::Value::parse(line)) << line;
  }
}

TEST(ObsRegistry, ResetZeroesInPlaceAndKeepsHandles) {
  obs::Counter& c = obs::counter("t_reset_total");
  c.inc(10);
  obs::Histogram& h = obs::histogram("t_reset_ns", {}, {10});
  h.observe(3);
  obs::MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(obs::MetricsRegistry::instance().events().empty());
  // The cached handle is still the live series.
  c.inc();
  EXPECT_EQ(obs::counter("t_reset_total").value(), 1u);
}

// ---- store instrumentation ----------------------------------------------------
// The durable store's counters share the process-wide registry, so these
// assert deltas around a scripted recovery rather than absolute values.

TEST(ObsStore, RecoveryIncrementsStoreCounters) {
  MemFileIo fs;
  ChaChaRng rng(9301);
  {
    SecurityManager mgr(test::test_params(2, 9301), rng);
    StateStore store =
        StateStore::create(fs, "sys", std::move(mgr), rng, StoreOptions{});
    store.add_user(rng);
    store.add_user(rng);
  }

  obs::Counter& recoveries = obs::counter("dfky_store_recoveries_total");
  obs::Counter& replayed =
      obs::counter("dfky_store_recovery_replayed_records_total");
  obs::Counter& trunc_recs =
      obs::counter("dfky_store_recovery_truncated_records_total");
  obs::Counter& trunc_bytes =
      obs::counter("dfky_store_recovery_truncated_bytes_total");
  obs::Histogram& recovery_ns = obs::histogram("dfky_store_recovery_ns");

  // Clean open: one recovery, two replayed records, nothing truncated.
  const std::uint64_t rec0 = recoveries.value(), rep0 = replayed.value();
  const std::uint64_t tr0 = trunc_recs.value(), tb0 = trunc_bytes.value();
  const std::uint64_t ns0 = recovery_ns.count();
  const std::size_t ev0 = obs::MetricsRegistry::instance().events().size();
  { StateStore s = StateStore::open(fs, "sys"); }
  EXPECT_EQ(recoveries.value(), rec0 + 1);
  EXPECT_EQ(replayed.value(), rep0 + 2);
  EXPECT_EQ(trunc_recs.value(), tr0);
  EXPECT_EQ(trunc_bytes.value(), tb0);
  EXPECT_EQ(recovery_ns.count(), ns0 + 1);
  const auto evs = obs::MetricsRegistry::instance().events();
  ASSERT_GT(evs.size(), ev0);
  EXPECT_EQ(evs.back().name, "store_recovery");
  EXPECT_EQ(evs.back().detail, "clean");

  // Torn tail: the truncation counters move and the event says so.
  const Bytes wal = fs.read("sys/wal.0");
  Bytes torn = wal;
  for (int i = 0; i < 21; ++i) torn.push_back(byte{0xEE});
  fs.write("sys/wal.0", torn);
  { StateStore s = StateStore::open(fs, "sys"); }
  EXPECT_EQ(recoveries.value(), rec0 + 2);
  EXPECT_EQ(replayed.value(), rep0 + 4);
  EXPECT_EQ(trunc_bytes.value(), tb0 + 21);
  EXPECT_EQ(obs::MetricsRegistry::instance().events().back().detail,
            "truncated");
}

TEST(ObsStore, CommitAndSnapshotTimersAccumulate) {
  MemFileIo fs;
  ChaChaRng rng(9302);
  SecurityManager mgr(test::test_params(2, 9302), rng);
  StoreOptions opts;
  opts.snapshot_every = 2;
  StateStore store =
      StateStore::create(fs, "sys", std::move(mgr), rng, opts);

  obs::Counter& appends = obs::counter("dfky_store_wal_appends_total");
  obs::Counter& snaps = obs::counter("dfky_store_snapshots_total");
  obs::Histogram& append_ns = obs::histogram("dfky_store_wal_append_ns");
  const std::uint64_t a0 = appends.value(), s0 = snaps.value();
  const std::uint64_t an0 = append_ns.count();

  store.add_user(rng);   // 1 record
  store.add_user(rng);   // 2 records -> snapshot rotation
  EXPECT_EQ(appends.value(), a0 + 2);
  EXPECT_EQ(snaps.value(), s0 + 1);
  EXPECT_GE(append_ns.count(), an0 + 2);
}

#endif  // DFKY_OBS_ENABLED

// ---- json.h -------------------------------------------------------------------

TEST(ObsJson, ParsesScalarsAndContainers) {
  const json::Value v = json::Value::parse(
      "  {\"a\": [1, -2.5, true, false, null, \"s\"], \"b\": {\"c\": 3}} ");
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 6u);
  EXPECT_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[1].as_number(), -2.5);
  EXPECT_TRUE(a->as_array()[2].as_bool());
  EXPECT_FALSE(a->as_array()[3].as_bool());
  EXPECT_TRUE(a->as_array()[4].is_null());
  EXPECT_EQ(a->as_array()[5].as_string(), "s");
  EXPECT_EQ(v.find("b")->find("c")->as_number(), 3.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ObsJson, StringEscapes) {
  const json::Value v =
      json::Value::parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA\xc3\xa9");
  EXPECT_EQ(json::escape("x\"y\\z\n"), "x\\\"y\\\\z\\n");
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse(""), DecodeError);
  EXPECT_THROW(json::Value::parse("{"), DecodeError);
  EXPECT_THROW(json::Value::parse("[1,]"), DecodeError);
  EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), DecodeError);
  EXPECT_THROW(json::Value::parse("nul"), DecodeError);
  EXPECT_THROW(json::Value::parse("\"unterminated"), DecodeError);
}

TEST(ObsJson, FormatNumber) {
  EXPECT_EQ(json::format_number(0), "0");
  EXPECT_EQ(json::format_number(42), "42");
  EXPECT_EQ(json::format_number(-7), "-7");
  EXPECT_EQ(json::format_number(2.5), "2.5");
  // Integers in the exact range stay exponent-free.
  EXPECT_EQ(json::format_number(1e12), "1000000000000");
}

TEST(ObsJson, BuildAndReparse) {
  json::Value obj = json::Value::object();
  obj.set("name", json::Value::string("x\ny"));
  json::Value arr = json::Value::array();
  arr.push_back(json::Value::number(1));
  arr.push_back(json::Value::boolean(true));
  obj.set("items", std::move(arr));
  // Round-trip through the exporters' escaping.
  const std::string text = "{\"name\":\"" + json::escape("x\ny") +
                           "\",\"items\":[1,true]}";
  const json::Value back = json::Value::parse(text);
  EXPECT_EQ(back.find("name")->as_string(), "x\ny");
  EXPECT_EQ(back.find("items")->as_array().size(), 2u);
}

}  // namespace
}  // namespace dfky
