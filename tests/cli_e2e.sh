#!/usr/bin/env bash
# End-to-end exercise of tools/dfky_cli: init -> subscribe -> broadcast ->
# revoke -> period change -> key update -> pirate -> trace.
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "cli_e2e: $1" >&2; exit 1; }

"$CLI" init sys.state --v 4 --group test128 >/dev/null
"$CLI" add sys.state alice.key >/dev/null
"$CLI" add sys.state bob.key >/dev/null
"$CLI" add sys.state carol.key >/dev/null

printf 'the midnight broadcast' > payload.bin
"$CLI" encrypt sys.state payload.bin b1.bin >/dev/null
[ "$("$CLI" decrypt alice.key b1.bin)" = "the midnight broadcast" ] \
  || fail "alice cannot decrypt"

# Revoke carol (id 2): she must be barred, alice unaffected.
"$CLI" revoke sys.state 2 >/dev/null
"$CLI" encrypt sys.state payload.bin b2.bin >/dev/null
[ "$("$CLI" decrypt alice.key b2.bin)" = "the midnight broadcast" ] \
  || fail "alice broken after revocation"
if "$CLI" decrypt carol.key b2.bin >/dev/null 2>&1; then
  fail "revoked carol still decrypts"
fi

# Trace an alice+bob pirate key.
"$CLI" pirate sys.state pirate.rep alice.key bob.key >/dev/null
"$CLI" trace sys.state pirate.rep | grep -q '#0' || fail "trace missed alice"
"$CLI" trace sys.state pirate.rep | grep -q '#1' || fail "trace missed bob"

# Force a period change (4 more revocations with v = 4), apply the reset.
for i in 1 2 3 4; do "$CLI" add sys.state "u$i.key" >/dev/null; done
"$CLI" revoke sys.state 3 4 5 6 --reset-out reset >/dev/null
[ -f reset.0.bin ] || fail "no reset bundle emitted"
"$CLI" apply-reset alice.key reset.0.bin >/dev/null
"$CLI" encrypt sys.state payload.bin b3.bin >/dev/null
[ "$("$CLI" decrypt alice.key b3.bin)" = "the midnight broadcast" ] \
  || fail "alice cannot decrypt after period change"

# Stale bob (reset never applied) must fail in the new period.
if "$CLI" decrypt bob.key b3.bin >/dev/null 2>&1; then
  fail "stale bob still decrypts"
fi

"$CLI" status sys.state | grep -q 'period: *1' || fail "period not advanced"
echo "cli_e2e: ok"
