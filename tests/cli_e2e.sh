#!/usr/bin/env bash
# End-to-end exercise of tools/dfky_cli: init -> subscribe -> broadcast ->
# revoke -> period change -> key update -> pirate -> trace; once against a
# legacy state file and once against a durable store directory (plus
# dfky_fsck when its binary is passed as $2).
set -euo pipefail

CLI="$1"
FSCK="${2:-}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "cli_e2e: $1" >&2; exit 1; }

"$CLI" init sys.state --v 4 --group test128 >/dev/null
"$CLI" add sys.state alice.key >/dev/null
"$CLI" add sys.state bob.key >/dev/null
"$CLI" add sys.state carol.key >/dev/null

printf 'the midnight broadcast' > payload.bin
"$CLI" encrypt sys.state payload.bin b1.bin >/dev/null
[ "$("$CLI" decrypt alice.key b1.bin)" = "the midnight broadcast" ] \
  || fail "alice cannot decrypt"

# Revoke carol (id 2): she must be barred, alice unaffected.
"$CLI" revoke sys.state 2 >/dev/null
"$CLI" encrypt sys.state payload.bin b2.bin >/dev/null
[ "$("$CLI" decrypt alice.key b2.bin)" = "the midnight broadcast" ] \
  || fail "alice broken after revocation"
if "$CLI" decrypt carol.key b2.bin >/dev/null 2>&1; then
  fail "revoked carol still decrypts"
fi

# Trace an alice+bob pirate key.
"$CLI" pirate sys.state pirate.rep alice.key bob.key >/dev/null
"$CLI" trace sys.state pirate.rep | grep -q '#0' || fail "trace missed alice"
"$CLI" trace sys.state pirate.rep | grep -q '#1' || fail "trace missed bob"

# Force a period change (4 more revocations with v = 4), apply the reset.
for i in 1 2 3 4; do "$CLI" add sys.state "u$i.key" >/dev/null; done
"$CLI" revoke sys.state 3 4 5 6 --reset-out reset >/dev/null
[ -f reset.0.bin ] || fail "no reset bundle emitted"
"$CLI" apply-reset alice.key reset.0.bin >/dev/null
"$CLI" encrypt sys.state payload.bin b3.bin >/dev/null
[ "$("$CLI" decrypt alice.key b3.bin)" = "the midnight broadcast" ] \
  || fail "alice cannot decrypt after period change"

# Stale bob (reset never applied) must fail in the new period.
if "$CLI" decrypt bob.key b3.bin >/dev/null 2>&1; then
  fail "stale bob still decrypts"
fi

"$CLI" status sys.state | grep -q 'period: *1' || fail "period not advanced"

# ---- exit codes and usage routing --------------------------------------------
if "$CLI" frobnicate >/dev/null 2>err.txt; then
  fail "unknown command exited 0"
fi
grep -q '^usage:' err.txt || fail "unknown command: no usage on stderr"
if "$CLI" status sys.state --frob 2>/dev/null; then
  fail "unknown flag exited 0"
fi
if "$CLI" >/dev/null 2>err.txt; then
  fail "bare invocation exited 0"
fi
"$CLI" help > help.txt || fail "help exited nonzero"
grep -q '^usage:' help.txt || fail "help: no usage on stdout"

# ---- malformed numeric argv: exit 2 + usage, never an uncaught throw ---------
# (std::stoul/stoull used to throw std::invalid_argument here, or silently
# wrap "-5" to 2^64-5 and revoke the wrong user.)
check_usage_error() {
  set +e
  "$CLI" "$@" >/dev/null 2>err.txt
  rc=$?
  set -e
  [ "$rc" = 2 ] || fail "'$*' exited $rc, want 2: $(cat err.txt)"
  grep -q '^usage:' err.txt || fail "'$*': no usage on stderr"
  if grep -Eq 'terminate|std::|abort' err.txt; then
    fail "'$*' died by uncaught exception: $(cat err.txt)"
  fi
}
check_usage_error revoke sys.state banana
check_usage_error revoke sys.state -5
check_usage_error revoke sys.state 18446744073709551616
check_usage_error revoke sys.state 99999999999999999999999999
check_usage_error init never.state --v banana
check_usage_error init never.state --v -1
check_usage_error init never.state --v 18446744073709551616
[ ! -e never.state ] || fail "malformed --v still created the state file"
check_usage_error stats nothing.jsonl --since banana
# client-mode ids go through the same parser.
check_usage_error client nowhere.sock revoke banana

# A daemon client with no daemon: clean nonzero failure, not a hang/crash.
if "$CLI" client /nonexistent/dfkyd.sock status >/dev/null 2>err.txt; then
  fail "client against a missing socket exited 0"
fi
grep -q 'cannot connect' err.txt || fail "client: unclear connect error"

# ---- metrics: --metrics-out snapshots merged by `stats` ----------------------
M="metrics.jsonl"
"$CLI" init sys2.state --v 2 --group test128 --metrics-out "$M" >/dev/null
"$CLI" add sys2.state dora.key --metrics-out "$M" >/dev/null
for i in 1 2 3; do "$CLI" add sys2.state "w$i.key" --metrics-out "$M" >/dev/null; done
"$CLI" revoke sys2.state 1 2 3 --reset-out r2 --metrics-out "$M" >/dev/null
[ -f r2.0.bin ] || fail "no reset bundle from sys2 revocations"
"$CLI" apply-reset dora.key r2.0.bin --metrics-out "$M" >/dev/null
"$CLI" encrypt sys2.state payload.bin b4.bin --metrics-out "$M" >/dev/null
[ "$("$CLI" decrypt dora.key b4.bin --metrics-out "$M")" = "the midnight broadcast" ] \
  || fail "dora cannot decrypt after period change"

head -n 1 "$M" | grep -q '"kind":"meta"' || fail "metrics file: no meta line"
"$CLI" stats "$M" > stats.txt || fail "stats exited nonzero"
if grep -q '"obs":"on"' "$M"; then
  # Obs layer compiled in: the scripted session must have left real numbers.
  grep -q 'obs layer: on' stats.txt || fail "stats: obs layer not reported on"
  grep -Eq 'dfky_bus_publish_bytes_total\{type="change_period"\} +[1-9]' stats.txt \
    || fail "stats: no publish bytes for the period change"
  grep -Eq 'dfky_reset_apply_total\{outcome="applied"\} +[1-9]' stats.txt \
    || fail "stats: reset apply not counted"
  grep -Eq 'dfky_decrypt_ns\{path="user"\} +count=[1-9]' stats.txt \
    || fail "stats: no decrypt timings"
  "$CLI" stats "$M" --format prom | grep -q 'dfky_users_added_total' \
    || fail "stats --format prom missing counters"
else
  # DFKY_OBS=OFF build: snapshots are meta-only and stats must say so.
  grep -q 'obs layer: off' stats.txt || fail "stats: obs layer not reported off"
fi
if "$CLI" stats "$M" --format yaml >/dev/null 2>&1; then
  fail "stats accepted an unknown format"
fi

# ---- stats --since windows snapshots by their meta timestamp -----------------
grep -q '"ts":' "$M" || fail "metrics meta lines carry no timestamp"
"$CLI" stats "$M" --since 0 | grep -q 'snapshots: [1-9]' \
  || fail "stats --since 0 dropped everything"
"$CLI" stats "$M" --since 99999999999 | grep -q 'snapshots: 0' \
  || fail "stats --since far-future kept snapshots"
if "$CLI" stats "$M" --since yesterday >/dev/null 2>&1; then
  fail "stats --since accepted a non-numeric timestamp"
fi

# ---- stats --name/--user narrow the event log ---------------------------------
# The scripted session above revoked users 1,2,3, so the revoke events
# carry known user ids; filters print the matching event lines verbatim.
if grep -q '"obs":"on"' "$M"; then
  "$CLI" stats "$M" --name revoke > ev.txt || fail "stats --name exited nonzero"
  grep -c '^event revoke ' ev.txt | grep -qx 3 \
    || fail "stats --name revoke: want 3 event lines: $(grep -c '^event ' ev.txt)"
  if grep '^event ' ev.txt | grep -v '^event revoke ' > /dev/null; then
    fail "stats --name leaked foreign events"
  fi
  "$CLI" stats "$M" --name revoke --user 2 > ev2.txt \
    || fail "stats --user exited nonzero"
  grep -q '^event revoke .*user=2' ev2.txt \
    || fail "stats --user 2 missed the matching revoke"
  grep -c '^event ' ev2.txt | grep -qx 1 \
    || fail "stats --user 2 kept non-matching events"
  if "$CLI" stats "$M" --name no_such_event | grep '^event ' > /dev/null; then
    fail "stats --name with an unknown event still printed events"
  fi
fi
check_usage_error stats "$M" --user banana
check_usage_error stats "$M" --name ''

# ---- corrupt state files die with a clear message ----------------------------
printf 'not a dfky state file' > bogus.state
if "$CLI" status bogus.state >/dev/null 2>err.txt; then
  fail "corrupt state file exited 0"
fi
grep -q "corrupt or not a dfky state file" err.txt \
  || fail "corrupt state: unclear message: $(cat err.txt)"
head -c 100 sys.state > truncated.state
if "$CLI" add truncated.state never.key >/dev/null 2>err.txt; then
  fail "truncated state file exited 0"
fi
grep -q "corrupt" err.txt || fail "truncated state: unclear message"

# ---- the same lifecycle on a durable store directory -------------------------
"$CLI" init store.sys --v 4 --group test128 --store >/dev/null
[ -d store.sys ] || fail "init --store did not create a directory"
[ -f store.sys/store.key ] || fail "store missing store.key"
"$CLI" add store.sys s_alice.key >/dev/null
"$CLI" add store.sys s_bob.key >/dev/null
"$CLI" encrypt store.sys payload.bin sb1.bin >/dev/null
[ "$("$CLI" decrypt s_alice.key sb1.bin)" = "the midnight broadcast" ] \
  || fail "store: alice cannot decrypt"
"$CLI" revoke store.sys 1 >/dev/null
"$CLI" encrypt store.sys payload.bin sb2.bin >/dev/null
if "$CLI" decrypt s_bob.key sb2.bin >/dev/null 2>&1; then
  fail "store: revoked bob still decrypts"
fi
"$CLI" new-period store.sys --reset-out snp >/dev/null
[ -f snp.0.bin ] || fail "store: new-period emitted no bundle"
"$CLI" apply-reset s_alice.key snp.0.bin >/dev/null
"$CLI" encrypt store.sys payload.bin sb3.bin >/dev/null
[ "$("$CLI" decrypt s_alice.key sb3.bin)" = "the midnight broadcast" ] \
  || fail "store: alice cannot decrypt after new-period"
"$CLI" status store.sys | grep -q 'period: *1' || fail "store: period not advanced"
"$CLI" status store.sys | grep -q 'store: *generation' \
  || fail "store: status does not report the store line"
if "$CLI" init store.sys --v 4 --group test128 --store >/dev/null 2>&1; then
  fail "init --store over an existing store exited 0"
fi

if [ -n "$FSCK" ]; then
  # Clean store passes; a torn WAL tail is detected, repaired, then clean.
  "$FSCK" store.sys >/dev/null || fail "fsck: clean store flagged"
  printf 'TORN_TAIL_GARBAGE' >> store.sys/wal.*
  if "$FSCK" store.sys >/dev/null; then
    fail "fsck: torn tail not detected"
  fi
  "$FSCK" store.sys --repair >/dev/null || fail "fsck --repair failed"
  "$FSCK" store.sys >/dev/null || fail "fsck: store dirty after repair"
  # The repaired store still serves its subscribers.
  "$CLI" encrypt store.sys payload.bin sb4.bin >/dev/null
  [ "$("$CLI" decrypt s_alice.key sb4.bin)" = "the midnight broadcast" ] \
    || fail "store: alice cannot decrypt after fsck repair"
  # An unrecoverable store exits 2.
  snapfile=(store.sys/snap.*)
  printf 'XXXXXXXX' | dd of="${snapfile[0]}" bs=1 seek=16 conv=notrunc 2>/dev/null
  set +e
  "$FSCK" store.sys >/dev/null 2>&1
  rc=$?
  set -e
  [ "$rc" = 2 ] || fail "fsck: corrupt snapshot exit code $rc, want 2"
fi

echo "cli_e2e: ok"
