// Hybrid content distribution (KEM/DEM) tests.
#include "core/content.h"

#include <gtest/gtest.h>

#include "core/manager.h"
#include "rng/chacha_rng.h"
#include "test_util.h"

namespace dfky {
namespace {

Bytes str(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

TEST(Content, RoundTrip) {
  ChaChaRng rng(200);
  SecurityManager mgr(test::test_params(3), rng);
  const auto u = mgr.add_user(rng);
  const Bytes payload = str("episode 1: the phantom broadcast");
  const ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), payload, rng);
  EXPECT_EQ(open_content(mgr.params(), u.key, msg), payload);
}

TEST(Content, LargePayload) {
  ChaChaRng rng(201);
  SecurityManager mgr(test::test_params(2), rng);
  const auto u = mgr.add_user(rng);
  Bytes payload(100000);
  rng.fill(payload);
  const ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), payload, rng);
  EXPECT_EQ(open_content(mgr.params(), u.key, msg), payload);
}

TEST(Content, RevokedUserRejected) {
  ChaChaRng rng(202);
  SecurityManager mgr(test::test_params(3), rng);
  const auto bad = mgr.add_user(rng);
  mgr.remove_user(bad.id, rng);
  const ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), str("secret"), rng);
  EXPECT_THROW(open_content(mgr.params(), bad.key, msg), Error);
}

TEST(Content, StaleKeyFailsAuthentication) {
  ChaChaRng rng(203);
  SecurityManager mgr(test::test_params(3), rng);
  const auto u = mgr.add_user(rng);
  mgr.new_period(rng);  // u's key becomes stale (reset not applied)
  const ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), str("secret"), rng);
  EXPECT_THROW(open_content(mgr.params(), u.key, msg), Error);
}

TEST(Content, TamperDetected) {
  ChaChaRng rng(204);
  SecurityManager mgr(test::test_params(2), rng);
  const auto u = mgr.add_user(rng);
  ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), str("payload"), rng);
  msg.sealed_payload[0] ^= 1;
  EXPECT_THROW(open_content(mgr.params(), u.key, msg), DecodeError);
}

TEST(Content, SerializationRoundTrip) {
  ChaChaRng rng(205);
  SecurityManager mgr(test::test_params(2), rng);
  const auto u = mgr.add_user(rng);
  const Bytes payload = str("serialize me");
  const ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), payload, rng);
  Writer w;
  msg.serialize(w, mgr.params().group);
  Reader r(w.bytes());
  const ContentMessage msg2 =
      ContentMessage::deserialize(r, mgr.params().group);
  r.expect_end();
  EXPECT_EQ(open_content(mgr.params(), u.key, msg2), payload);
}

TEST(Content, RepresentationPathDecrypts) {
  ChaChaRng rng(206);
  SecurityManager mgr(test::test_params(3), rng);
  const auto u = mgr.add_user(rng);
  const Representation rep =
      representation_of(mgr.params(), u.key, mgr.public_key());
  const Bytes payload = str("pirated stream");
  const ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), payload, rng);
  EXPECT_EQ(open_content_with_representation(mgr.params(), rep, msg), payload);
}

TEST(Content, WireOverheadIndependentOfPayloadStructure) {
  ChaChaRng rng(207);
  SecurityManager mgr(test::test_params(4), rng);
  const ContentMessage a =
      seal_content(mgr.params(), mgr.public_key(), Bytes(10, 0), rng);
  const ContentMessage b =
      seal_content(mgr.params(), mgr.public_key(), Bytes(1000, 0), rng);
  const std::size_t overhead_a =
      a.wire_size(mgr.params().group) - 10;
  const std::size_t overhead_b =
      b.wire_size(mgr.params().group) - 1000;
  EXPECT_EQ(overhead_a, overhead_b);
}

}  // namespace
}  // namespace dfky
