// E11: Durable state store cost (DESIGN.md Sect. 9).
// Claims: a mutation's durability overhead is one WAL record append + fsync
// (independent of population size n); snapshot rotation is O(state);
// recovery replays the WAL suffix linearly. Measured both against the real
// filesystem (fsync included) and the in-memory FileIo (framing/HMAC cost
// in isolation).
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include <chrono>
#include <string>

#include "bench_json.h"
#include "core/manager.h"
#include "rng/chacha_rng.h"
#include "store/file_io.h"
#include "store/store.h"

using namespace dfky;

namespace {

benchjson::Report g_report("store");

constexpr std::size_t kV = 8;

SystemParams make_params() {
  ChaChaRng rng(42);
  return SystemParams::create(Group(GroupParams::named(ParamId::kSec512)), kV,
                              rng);
}

StoreOptions no_rotation() {
  StoreOptions opts;
  opts.snapshot_every = std::size_t{1} << 30;  // isolate what each table times
  return opts;
}

void remove_store_dir(FileIo& io, const std::string& dir) {
  if (!io.is_dir(dir)) return;
  for (const std::string& name : io.list(dir)) io.remove(dir + "/" + name);
  ::rmdir(dir.c_str());
}

// E11a: durable add_user — WAL append + fsync on a real filesystem vs the
// in-memory model. The gap is the price of the durable-before-ack contract.
void mutation_table() {
  std::printf("# E11a: durable add_user latency (v = %zu, 512-bit group)\n",
              kV);
  std::printf("%10s %12s %12s %10s\n", "backend", "median-us", "p95-us",
              "rec-bytes");
  const std::size_t samples = benchjson::smoke() ? 4 : 32;
  const SystemParams sp = make_params();

  const auto run = [&](FileIo& io, const std::string& dir,
                       const std::string& op, const char* label) {
    ChaChaRng rng(1);
    remove_store_dir(io, dir);
    StateStore store =
        StateStore::create(io, dir, SecurityManager(sp, rng), rng,
                           no_rotation());
    const std::size_t wal0 =
        io.read(dir + "/wal.0").size();
    const benchjson::Timing t =
        benchjson::time_samples(samples, [&] { store.add_user(rng); });
    const std::size_t per_record =
        (io.read(dir + "/wal.0").size() - wal0) / samples;
    g_report.add({op, 0, kV, t.median_ns, t.p95_ns, per_record, t.samples});
    std::printf("%10s %12.1f %12.1f %10zu\n", label,
                static_cast<double>(t.median_ns) / 1e3,
                static_cast<double>(t.p95_ns) / 1e3, per_record);
    remove_store_dir(io, dir);
  };

  MemFileIo mem;
  run(mem, "sys", "add_user_mem", "mem");
  char tmpl[] = "/tmp/dfky_bench_store_XXXXXX";
  if (::mkdtemp(tmpl) != nullptr) {
    RealFileIo real;
    run(real, std::string(tmpl) + "/sys", "add_user_disk", "disk");
    ::rmdir(tmpl);
  } else {
    std::printf("# (mkdtemp failed; skipping the on-disk row)\n");
  }
}

// E11b: snapshot rotation vs population n — write-temp/fsync/rename of the
// full state plus a fresh WAL header.
void snapshot_table() {
  std::printf("\n# E11b: snapshot rotation vs population n (in-memory io)\n");
  std::printf("%8s %12s %12s %12s\n", "n", "median-us", "p95-us",
              "snap-bytes");
  const std::size_t samples = benchjson::smoke() ? 3 : 9;
  const std::vector<std::size_t> ns =
      benchjson::smoke() ? std::vector<std::size_t>{8, 32}
                         : std::vector<std::size_t>{16, 64, 256};
  const SystemParams sp = make_params();
  for (std::size_t n : ns) {
    ChaChaRng rng(2);
    MemFileIo io;
    StateStore store =
        StateStore::create(io, "sys", SecurityManager(sp, rng), rng,
                           no_rotation());
    for (std::size_t i = 0; i < n; ++i) store.add_user(rng);
    const benchjson::Timing t =
        benchjson::time_samples(samples, [&] { store.snapshot(); });
    const std::size_t bytes =
        io.read("sys/" + (StateStore::kSnapPrefix +
                          std::to_string(store.generation())))
            .size();
    g_report.add({"snapshot", n, kV, t.median_ns, t.p95_ns, bytes,
                  t.samples});
    std::printf("%8zu %12.1f %12.1f %12zu\n", n,
                static_cast<double>(t.median_ns) / 1e3,
                static_cast<double>(t.p95_ns) / 1e3, bytes);
  }
}

// E11c: recovery — open() replaying k WAL records on top of the snapshot.
void recovery_table() {
  std::printf("\n# E11c: recovery (open + WAL replay) vs WAL length\n");
  std::printf("%8s %12s %12s %12s\n", "records", "median-us", "p95-us",
              "wal-bytes");
  const std::size_t samples = benchjson::smoke() ? 3 : 9;
  const std::vector<std::size_t> ks =
      benchjson::smoke() ? std::vector<std::size_t>{8, 32}
                         : std::vector<std::size_t>{16, 64, 256};
  const SystemParams sp = make_params();
  for (std::size_t k : ks) {
    ChaChaRng rng(3);
    MemFileIo io;
    {
      StateStore store =
          StateStore::create(io, "sys", SecurityManager(sp, rng), rng,
                             no_rotation());
      for (std::size_t i = 0; i < k; ++i) store.add_user(rng);
    }
    const std::size_t wal_bytes = io.read("sys/wal.0").size();
    const benchjson::Timing t = benchjson::time_samples(samples, [&] {
      const StateStore s = StateStore::open(io, "sys", no_rotation());
      if (s.wal_records() != k) std::abort();  // bench invariant
    });
    g_report.add({"recovery_open", k, kV, t.median_ns, t.p95_ns, wal_bytes,
                  t.samples});
    std::printf("%8zu %12.1f %12.1f %12zu\n", k,
                static_cast<double>(t.median_ns) / 1e3,
                static_cast<double>(t.p95_ns) / 1e3, wal_bytes);
  }
}

}  // namespace

int main() {
  std::printf("=== E11: Durable state store ===\n\n");
  mutation_table();
  snapshot_table();
  recovery_table();
  return g_report.write() ? 0 : 1;
}
