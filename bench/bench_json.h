// Machine-readable bench output: every bench_* binary additionally writes a
// BENCH_<name>.json next to its human-readable table, so the perf trajectory
// accumulates across PRs (schema documented in DESIGN.md Sect. 8).
//
// Schema (dfky-bench-v1):
//   {
//     "schema": "dfky-bench-v1",
//     "bench": "<bench name>",
//     "smoke": <bool>,            // true when DFKY_BENCH_SMOKE=1 shrank sizes
//     "obs": <bool>,              // whether the metrics layer was compiled in
//     "records": [
//       {"op": "<operation>", "n": <int>, "v": <int>,
//        "median_ns": <int>, "p95_ns": <int>, "bytes": <int>,
//        "samples": <int>},
//       ...
//     ]
//   }
//
// `n` is the operation's natural size parameter (users, gap length, window
// size — 0 when meaningless), `v` the scheme's saturation limit (0 when the
// record is not tied to a scheme instance), `bytes` the wire/payload size the
// record accounts for (0 when timing-only). Pure transmission records carry
// median_ns = p95_ns = 0.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs/build_info.h"
#include "obs/metrics.h"

namespace dfky::benchjson {

/// True when the driver asked for the fast smoke profile (tiny sizes, few
/// samples) via DFKY_BENCH_SMOKE=1 — used by tools/bench_check.sh.
inline bool smoke() {
  const char* s = std::getenv("DFKY_BENCH_SMOKE");
  return s != nullptr && s[0] == '1';
}

struct Record {
  std::string op;
  std::uint64_t n = 0;
  std::uint64_t v = 0;
  std::uint64_t median_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t samples = 0;
};

/// Wall-clock samples of `fn`, reduced to median/p95. Runs the closure
/// `samples` times (smoke() callers should pass a small count).
struct Timing {
  std::uint64_t median_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t samples = 0;
};

inline Timing time_samples(std::size_t samples,
                           const std::function<void()>& fn) {
  std::vector<std::uint64_t> ns;
  ns.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::sort(ns.begin(), ns.end());
  Timing t;
  t.samples = ns.size();
  if (!ns.empty()) {
    t.median_ns = ns[ns.size() / 2];
    t.p95_ns = ns[std::min(ns.size() - 1, (ns.size() * 95) / 100)];
  }
  return t;
}

/// Collects records and writes BENCH_<name>.json in the working directory.
class Report {
 public:
  explicit Report(std::string bench_name) : name_(std::move(bench_name)) {}

  void add(Record rec) { records_.push_back(std::move(rec)); }

  /// Convenience: time `fn` and file the result in one step.
  void add_timed(std::string op, std::uint64_t n, std::uint64_t v,
                 std::uint64_t bytes, std::size_t samples,
                 const std::function<void()>& fn) {
    const Timing t = time_samples(samples, fn);
    add(Record{std::move(op), n, v, t.median_ns, t.p95_ns, bytes, t.samples});
  }

  /// Writes BENCH_<name>.json; returns false (with a stderr note) on I/O
  /// failure so benches can exit nonzero.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"schema\":\"dfky-bench-v1\",\"bench\":\"%s\",",
                 name_.c_str());
    // Identifies the binary under test (extra key; the schema checker
    // validates required fields only, so dfky-bench-v1 stays compatible).
    const BuildInfo b = build_info();
    std::fprintf(f,
                 "\"build\":{\"version\":\"%s\",\"git\":\"%s\","
                 "\"sanitizer\":\"%s\",\"obs\":%s},",
                 b.version.c_str(), b.git.c_str(), b.sanitizer.c_str(),
                 b.obs ? "true" : "false");
    std::fprintf(f, "\"smoke\":%s,\"obs\":%s,\"records\":[",
                 smoke() ? "true" : "false",
                 obs::enabled() ? "true" : "false");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "%s\n  {\"op\":\"%s\",\"n\":%llu,\"v\":%llu,"
                   "\"median_ns\":%llu,\"p95_ns\":%llu,\"bytes\":%llu,"
                   "\"samples\":%llu}",
                   i == 0 ? "" : ",", r.op.c_str(),
                   static_cast<unsigned long long>(r.n),
                   static_cast<unsigned long long>(r.v),
                   static_cast<unsigned long long>(r.median_ns),
                   static_cast<unsigned long long>(r.p95_ns),
                   static_cast<unsigned long long>(r.bytes),
                   static_cast<unsigned long long>(r.samples));
    }
    std::fprintf(f, "\n]}\n");
    const bool ok = std::fclose(f) == 0;
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
    return ok;
  }

 private:
  std::string name_;
  std::vector<Record> records_;
};

}  // namespace dfky::benchjson
