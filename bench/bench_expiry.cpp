// E7: adversary expiry (paper Sect. 1.3 + Theorem 1).
// Claims: a window adversary that is fully revoked within one period cannot
// distinguish broadcasts afterwards (advantage ~ 0), even if it keeps
// watching the system and forcing period changes; the same pressure REVIVES
// a revoked adversary in bounded-revocation baselines.
#include <cstdio>

#include <chrono>

#include "attacks/revive.h"
#include "attacks/window_game.h"
#include "bench_json.h"
#include "rng/chacha_rng.h"

using namespace dfky;

namespace {

benchjson::Report g_report("expiry");

SystemParams make_params(std::size_t v) {
  ChaChaRng rng(42);
  return SystemParams::create(Group(GroupParams::named(ParamId::kTest128)), v,
                              rng);
}

const char* strategy_name(WindowStrategy s) {
  switch (s) {
    case WindowStrategy::kExpiredConvex:
      return "expired-convex-pirate-key";
    case WindowStrategy::kExpiredInterpolation:
      return "expired-degree-guess-interpolation";
    case WindowStrategy::kExpiredAcrossPeriod:
      return "expired-attacks-next-period";
    case WindowStrategy::kUnrevokedControl:
      return "CONTROL-unrevoked-key";
  }
  return "?";
}

void window_table() {
  std::printf(
      "# E7a: window-adversary advantage (v = 3, 200 trials per row)\n"
      "#      success ~ 0.5 <=> advantage ~ 0 (the scheme expires the\n"
      "#      adversary); the control row validates the game machinery.\n");
  std::printf("%40s %10s %10s %12s\n", "strategy", "coalition", "success",
              "advantage");
  const SystemParams sp = make_params(3);
  const std::size_t trials = benchjson::smoke() ? 10 : 200;
  const struct {
    WindowStrategy s;
    std::size_t coalition;
  } rows[] = {
      {WindowStrategy::kExpiredConvex, 3},
      {WindowStrategy::kExpiredConvex, 1},
      {WindowStrategy::kExpiredInterpolation, 3},
      {WindowStrategy::kExpiredAcrossPeriod, 2},
      {WindowStrategy::kUnrevokedControl, 1},
  };
  ChaChaRng rng(1);
  for (const auto& row : rows) {
    const auto t0 = std::chrono::steady_clock::now();
    const WindowTrialStats st =
        run_window_trials(sp, row.s, trials, row.coalition, rng);
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    std::printf("%40s %10zu %10.3f %12.3f\n", strategy_name(row.s),
                row.coalition, st.success_rate(), st.advantage());
    // n = trial count, per-row wall time across all trials.
    g_report.add({std::string("window_trials_") + strategy_name(row.s),
                  trials, 3, ns / trials, ns / trials, 0, trials});
  }
}

void revive_table() {
  std::printf(
      "\n# E7b: revive attack — revoked adversary, then v further "
      "revocations\n");
  std::printf("%6s %26s %26s\n", "v", "bounded-baseline", "this-scheme");
  for (std::size_t v : {2u, 4u, 8u}) {
    ChaChaRng rng(100 + v);
    const ReviveOutcome out = run_revive_attack(make_params(v), rng);
    std::printf("%6zu %26s %26s\n", v,
                out.baseline_revived ? "REVIVED (decrypts again)"
                                     : "still barred",
                out.scheme_revived ? "REVIVED (decrypts again)"
                                   : "expired (still barred)");
  }
}

}  // namespace

int main() {
  std::printf("=== E7: adversary expiry vs revive ===\n\n");
  window_table();
  if (!benchjson::smoke()) revive_table();
  return g_report.write() ? 0 : 1;
}
