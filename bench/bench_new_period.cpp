// E4: New-period cost (paper Sect. 4 + Remark).
// Claims: the plain reset message carries 2v+2 ciphertexts of O(v) elements
// each — O(v^2) communication; the hybrid variant drops this to O(v).
// Both are independent of the number of users n.
#include <cstdio>

#include <chrono>

#include "core/manager.h"
#include "core/receiver.h"
#include "rng/chacha_rng.h"

using namespace dfky;

namespace {

SystemParams make_params(std::size_t v) {
  ChaChaRng rng(42);
  return SystemParams::create(Group(GroupParams::named(ParamId::kSec512)), v,
                              rng);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void wire_and_time_table() {
  std::printf(
      "# E4a: reset-message bytes & build time vs v (512-bit group)\n");
  std::printf("%6s %16s %16s %10s %12s %12s\n", "v", "plain-bytes",
              "hybrid-bytes", "ratio", "plain-ms", "hybrid-ms");
  for (std::size_t v : {4, 8, 16, 32, 64}) {
    const SystemParams sp = make_params(v);
    ChaChaRng rng(1);
    SecurityManager mgr_p(sp, rng, ResetMode::kPlain);
    SecurityManager mgr_h(sp, rng, ResetMode::kHybrid);

    auto t0 = std::chrono::steady_clock::now();
    const auto plain = mgr_p.new_period(rng);
    const double plain_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto hybrid = mgr_h.new_period(rng);
    const double hybrid_ms = ms_since(t0);

    const std::size_t pb = plain.wire_size(sp.group);
    const std::size_t hb = hybrid.wire_size(sp.group);
    std::printf("%6zu %16zu %16zu %9.1fx %12.1f %12.1f\n", v, pb, hb,
                static_cast<double>(pb) / static_cast<double>(hb), plain_ms,
                hybrid_ms);
  }
}

void population_independence_table() {
  std::printf(
      "\n# E4b: New-period cost vs population n (v = 8, hybrid)\n"
      "#      claim: communication and time independent of n\n");
  std::printf("%8s %14s %12s\n", "n", "bytes", "ms");
  for (std::size_t n : {16, 128, 1024}) {
    const SystemParams sp = make_params(8);
    ChaChaRng rng(2);
    SecurityManager mgr(sp, rng, ResetMode::kHybrid);
    for (std::size_t i = 0; i < n; ++i) mgr.add_user(rng);
    const auto t0 = std::chrono::steady_clock::now();
    const auto bundle = mgr.new_period(rng);
    const double ms = ms_since(t0);
    std::printf("%8zu %14zu %12.1f\n", n, bundle.wire_size(sp.group), ms);
  }
}

void receiver_update_table() {
  std::printf(
      "\n# E4c: receiver-side key-update time vs v (hybrid; one KEM\n"
      "#      decryption of v+2 exps + polynomial evaluation)\n");
  std::printf("%6s %12s\n", "v", "ms");
  for (std::size_t v : {4, 8, 16, 32, 64}) {
    const SystemParams sp = make_params(v);
    ChaChaRng rng(3);
    SecurityManager mgr(sp, rng, ResetMode::kHybrid);
    const auto u = mgr.add_user(rng);
    Receiver receiver(sp, u.key, mgr.verification_key());
    const auto bundle = mgr.new_period(rng);
    const auto t0 = std::chrono::steady_clock::now();
    receiver.apply_reset(bundle);
    std::printf("%6zu %12.1f\n", v, ms_since(t0));
  }
}

}  // namespace

int main() {
  std::printf("=== E4: New-period operation ===\n\n");
  wire_and_time_table();
  population_independence_table();
  receiver_update_table();
  return 0;
}
