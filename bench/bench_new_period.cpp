// E4: New-period cost (paper Sect. 4 + Remark).
// Claims: the plain reset message carries 2v+2 ciphertexts of O(v) elements
// each — O(v^2) communication; the hybrid variant drops this to O(v).
// Both are independent of the number of users n.
#include <cstdio>

#include <chrono>

#include "bench_json.h"
#include "core/manager.h"
#include "core/receiver.h"
#include "rng/chacha_rng.h"

using namespace dfky;

namespace {

benchjson::Report g_report("new_period");

std::vector<std::size_t> v_sweep() {
  if (benchjson::smoke()) return {4, 8};
  return {4, 8, 16, 32, 64};
}

SystemParams make_params(std::size_t v) {
  ChaChaRng rng(42);
  return SystemParams::create(Group(GroupParams::named(ParamId::kSec512)), v,
                              rng);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void wire_and_time_table() {
  std::printf(
      "# E4a: reset-message bytes & build time vs v (512-bit group)\n");
  std::printf("%6s %16s %16s %10s %12s %12s\n", "v", "plain-bytes",
              "hybrid-bytes", "ratio", "plain-ms", "hybrid-ms");
  const std::size_t samples = benchjson::smoke() ? 2 : 5;
  for (std::size_t v : v_sweep()) {
    const SystemParams sp = make_params(v);
    ChaChaRng rng(1);
    SecurityManager mgr_p(sp, rng, ResetMode::kPlain);
    SecurityManager mgr_h(sp, rng, ResetMode::kHybrid);

    std::size_t pb = 0;
    const benchjson::Timing plain_t = benchjson::time_samples(samples, [&] {
      pb = mgr_p.new_period(rng).wire_size(sp.group);
    });
    std::size_t hb = 0;
    const benchjson::Timing hybrid_t = benchjson::time_samples(samples, [&] {
      hb = mgr_h.new_period(rng).wire_size(sp.group);
    });
    g_report.add({"new_period_plain", 0, v, plain_t.median_ns,
                  plain_t.p95_ns, pb, plain_t.samples});
    g_report.add({"new_period_hybrid", 0, v, hybrid_t.median_ns,
                  hybrid_t.p95_ns, hb, hybrid_t.samples});
    std::printf("%6zu %16zu %16zu %9.1fx %12.1f %12.1f\n", v, pb, hb,
                static_cast<double>(pb) / static_cast<double>(hb),
                static_cast<double>(plain_t.median_ns) / 1e6,
                static_cast<double>(hybrid_t.median_ns) / 1e6);
  }
}

void population_independence_table() {
  std::printf(
      "\n# E4b: New-period cost vs population n (v = 8, hybrid)\n"
      "#      claim: communication and time independent of n\n");
  std::printf("%8s %14s %12s\n", "n", "bytes", "ms");
  const std::vector<std::size_t> ns =
      benchjson::smoke() ? std::vector<std::size_t>{16, 128}
                         : std::vector<std::size_t>{16, 128, 1024};
  for (std::size_t n : ns) {
    const SystemParams sp = make_params(8);
    ChaChaRng rng(2);
    SecurityManager mgr(sp, rng, ResetMode::kHybrid);
    for (std::size_t i = 0; i < n; ++i) mgr.add_user(rng);
    const auto t0 = std::chrono::steady_clock::now();
    const auto bundle = mgr.new_period(rng);
    const double ms = ms_since(t0);
    const std::size_t bytes = bundle.wire_size(sp.group);
    std::printf("%8zu %14zu %12.1f\n", n, bytes, ms);
    g_report.add({"new_period_vs_n", n, 8,
                  static_cast<std::uint64_t>(ms * 1e6),
                  static_cast<std::uint64_t>(ms * 1e6), bytes, 1});
  }
}

void receiver_update_table() {
  std::printf(
      "\n# E4c: receiver-side key-update time vs v (hybrid; one KEM\n"
      "#      decryption of v+2 exps + polynomial evaluation)\n");
  std::printf("%6s %12s\n", "v", "ms");
  for (std::size_t v : v_sweep()) {
    const SystemParams sp = make_params(v);
    ChaChaRng rng(3);
    SecurityManager mgr(sp, rng, ResetMode::kHybrid);
    const auto u = mgr.add_user(rng);
    Receiver receiver(sp, u.key, mgr.verification_key());
    const auto bundle = mgr.new_period(rng);
    const auto t0 = std::chrono::steady_clock::now();
    receiver.apply_reset(bundle);
    const double ms = ms_since(t0);
    std::printf("%6zu %12.1f\n", v, ms);
    g_report.add({"reset_apply", 0, v, static_cast<std::uint64_t>(ms * 1e6),
                  static_cast<std::uint64_t>(ms * 1e6),
                  bundle.wire_size(sp.group), 1});
  }
}

}  // namespace

int main() {
  std::printf("=== E4: New-period operation ===\n\n");
  wire_and_time_table();
  population_independence_table();
  receiver_update_table();
  return g_report.write() ? 0 : 1;
}
