// E16: streaming feed — broadcast-to-all-current latency and catch-up
// throughput at subscriber scale (DESIGN.md Sect. 16). Claim: because a
// committed broadcast is serialized once and fanned out as one refcounted
// frame through the reactor's write ropes, growing the herd 10x
// (1k -> 10k) grows the time from publish until EVERY subscriber holds
// the frame by at most ~10x once the kernel's own per-socket send cost is
// factored out (the kernel_send_floor record, measured on the same host —
// on small-cache machines the bare send() loop itself scales
// super-linearly at 10k sockets); and the resume-from-period replay path
// sustains a catch-up storm — every parked subscriber bridged over the
// missed epochs — at a per-receiver cost that is flat in the herd size.
// Smoke profile (DFKY_BENCH_SMOKE=1) runs 100/1000 subscribers; the full
// run 1000/10000.
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "daemon/feed.h"
#include "daemon/protocol.h"
#include "daemon/reactor.h"

using namespace dfky;

namespace {

benchjson::Report g_report("feed");

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 1024) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const timeval tv{.tv_sec = 60, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one LF line; false on EOF/timeout. `buf` carries leftovers.
bool recv_line(int fd, std::string& buf, std::string* line) {
  for (;;) {
    const std::size_t pos = buf.find('\n');
    if (pos != std::string::npos) {
      if (line != nullptr) *line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      return true;
    }
    char chunk[1 << 16];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Reactor + FeedHub over a unix socket — the daemon's streaming front
/// end without the store behind it.
struct Harness {
  std::string dir;
  std::string sock;
  int lfd = -1;
  int wake[2] = {-1, -1};
  daemon::FeedHub hub;
  std::optional<daemon::Reactor> reactor;
  std::thread thr;

  Harness() {
    char tmpl[] = "/tmp/dfky_bench_feed_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) std::abort();
    dir = tmpl;
    sock = dir + "/d.sock";
    lfd = listen_unix(sock);
    if (lfd < 0 || ::pipe2(wake, O_CLOEXEC) != 0) std::abort();
    daemon::ReactorOptions opts;
    opts.listen_fd = lfd;
    opts.wake_fd = wake[0];
    opts.workers = 2;
    opts.feed = &hub;
    const int wake_wr = wake[1];
    reactor.emplace(
        opts,
        [](const std::string& line) {
          const daemon::TaggedLine t = daemon::split_request_tag(line);
          return daemon::Reactor::Result{
              daemon::tag_response(t.id, daemon::ok_response()), false};
        },
        std::function<std::size_t()>{},
        [wake_wr] {
          const char b = 1;
          [[maybe_unused]] const ssize_t n = ::write(wake_wr, &b, 1);
        });
    thr = std::thread([this] { reactor->run(); });
  }

  ~Harness() {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake[1], &b, 1);
    thr.join();
    ::close(lfd);
    ::close(wake[0]);
    ::close(wake[1]);
    ::unlink(sock.c_str());
    ::rmdir(dir.c_str());
  }
};

struct Subscriber {
  int fd = -1;
  std::string buf;
};

/// The subscribed herd plus an edge-triggered epoll over it: await_all()
/// returns once the current frame has REACHED every subscriber's socket
/// (broadcast-to-all-current on the wire), without paying a per-fd
/// blocking read inside the timed region; drain() then empties the
/// sockets untimed so the next sample starts clean.
struct Herd {
  std::vector<Subscriber> subs;
  int ep = -1;

  explicit Herd(std::size_t n) : subs(n) {}
  ~Herd() {
    for (Subscriber& s : subs) {
      if (s.fd >= 0) ::close(s.fd);
    }
    if (ep >= 0) ::close(ep);
  }

  void arm() {
    ep = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep < 0) std::abort();
    for (std::size_t i = 0; i < subs.size(); ++i) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET;
      ev.data.u64 = i;
      if (::epoll_ctl(ep, EPOLL_CTL_ADD, subs[i].fd, &ev) != 0) std::abort();
    }
  }

  /// One frame per subscriber is in flight; each fd fires exactly one
  /// edge when its copy lands. Between batches the waiter sleeps briefly
  /// instead of re-arming immediately: on a small host every re-arm wakes
  /// this thread per-send, preempting the reactor mid-fan-out and billing
  /// the scheduler ping-pong to the latency being measured.
  void await_all() {
    std::size_t got = 0;
    std::vector<epoll_event> evs(subs.size());
    int timeout_ms = 60000;
    while (got < subs.size()) {
      const int n = ::epoll_wait(ep, evs.data(),
                                 static_cast<int>(evs.size()), timeout_ms);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 || (n == 0 && timeout_ms == 60000)) {
        std::fprintf(stderr, "bench_feed: fan-out stalled\n");
        std::exit(1);
      }
      got += static_cast<std::size_t>(n);
      if (got < subs.size()) ::usleep(200);
      timeout_ms = 60000;
    }
  }

  void drain_line_each() {
    for (Subscriber& s : subs) {
      if (!recv_line(s.fd, s.buf, nullptr)) {
        std::fprintf(stderr, "bench_feed: a subscriber lost the stream\n");
        std::exit(1);
      }
    }
  }
};

/// A realistic New-period frame: the bundles field carries roughly one
/// shard's signed reset bundle in hex (~1.5 KiB on kTest128).
std::string make_frame(std::uint64_t period, std::size_t bundle_hex) {
  std::string f = "bcast new-period period=" + std::to_string(period) +
                  " bundles=";
  f.append(bundle_hex, 'a');
  return f;
}

/// The same-host lower bound the fan-out is measured against: one thread
/// send()ing one frame-sized payload to n idle unix stream sockets, no
/// application code at all. Per-send cost grows with the socket count on
/// small-cache hosts (socket structs + skb churn exceed the LLC), so the
/// architectural claim below is normalized by this floor.
std::uint64_t kernel_send_floor(std::size_t n, std::size_t frame_bytes) {
  std::vector<std::array<int, 2>> pairs(n);
  for (auto& p : pairs) {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, p.data()) != 0) {
      std::fprintf(stderr, "bench_feed: socketpair failed\n");
      std::exit(1);
    }
  }
  const std::string payload(frame_bytes, 'a');
  std::vector<char> rbuf(1 << 16);
  std::uint64_t best = ~std::uint64_t{0};
  for (int round = 0; round < 15; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& p : pairs) {
      if (::send(p[0], payload.data(), payload.size(), MSG_NOSIGNAL) < 0) {
        std::fprintf(stderr, "bench_feed: floor send failed\n");
        std::exit(1);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (auto& p : pairs) {
      [[maybe_unused]] const ssize_t r =
          ::recv(p[1], rbuf.data(), rbuf.size(), 0);
    }
    best = std::min(best, static_cast<std::uint64_t>(
                              std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  t1 - t0)
                                  .count()));
  }
  for (auto& p : pairs) {
    ::close(p[0]);
    ::close(p[1]);
  }
  g_report.add(benchjson::Record{"kernel_send_floor", n, 0, best, best,
                                 frame_bytes * n, 15});
  std::printf("%-24s %8zu socks  best   %10.3f ms\n", "kernel_send_floor", n,
              best / 1e6);
  return best;
}

std::size_t reader_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : std::min<std::size_t>(hw, 16);
}

std::uint64_t bench_broadcast(std::size_t n_subs, std::size_t samples, std::size_t bundle_hex) {
  Harness h;
  Herd herd(n_subs);
  for (Subscriber& s : herd.subs) {
    s.fd = connect_unix(h.sock);
    if (s.fd < 0 || !send_all(s.fd, "subscribe\n") ||
        !recv_line(s.fd, s.buf, nullptr)) {
      std::fprintf(stderr, "bench_feed: subscribe failed\n");
      std::exit(1);
    }
  }
  herd.arm();

  std::uint64_t period = 0;
  // Warmup: the first fan-out grows every write rope and the allocator.
  ++period;
  h.hub.publish(make_frame(period, bundle_hex), period);
  herd.await_all();
  herd.drain_line_each();

  // Timed region: publish until the frame has reached every socket. The
  // drain is each subscriber's own read cost, not fan-out latency; it runs
  // between samples so every sample starts with empty sockets.
  std::vector<std::uint64_t> ns;
  ns.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    ++period;
    const auto t0 = std::chrono::steady_clock::now();
    h.hub.publish(make_frame(period, bundle_hex), period);
    herd.await_all();
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    herd.drain_line_each();
  }
  std::sort(ns.begin(), ns.end());
  benchjson::Timing t;
  t.samples = ns.size();
  t.median_ns = ns[ns.size() / 2];
  t.p95_ns = ns[std::min(ns.size() - 1, (ns.size() * 95) / 100)];

  const std::string probe = make_frame(0, bundle_hex);
  g_report.add(benchjson::Record{"broadcast_all_current", n_subs, 0,
                                 t.median_ns, t.p95_ns,
                                 probe.size() * n_subs, t.samples});
  std::printf("%-24s %8zu subs   median %10.3f ms   p95 %10.3f ms\n",
              "broadcast_all_current", n_subs, t.median_ns / 1e6,
              t.p95_ns / 1e6);
  return t.median_ns;
}

void bench_catchup(std::size_t n_subs, std::uint64_t gap) {
  Harness h;
  // The missed epochs, served by the replay source exactly like the
  // daemon rebuilds them from the shards' reset archives.
  std::vector<std::string> hist;
  for (std::uint64_t p = 1; p <= gap; ++p) hist.push_back(make_frame(p, 1536));
  h.hub.set_replay([&hist, gap](std::optional<std::uint64_t> from) {
    daemon::FeedReplay rep;
    rep.ok = true;
    rep.current = gap;
    rep.oldest = 1;
    const std::uint64_t f = from.value_or(gap);
    for (std::uint64_t p = f + 1; p <= gap; ++p) {
      rep.lines.push_back(hist[p - 1]);
    }
    return rep;
  });

  // Park the herd first, then release it all at once.
  std::vector<Subscriber> subs(n_subs);
  for (Subscriber& s : subs) {
    s.fd = connect_unix(h.sock);
    if (s.fd < 0) {
      std::fprintf(stderr, "bench_feed: connect failed\n");
      std::exit(1);
    }
  }

  const std::size_t workers = reader_threads();
  std::atomic<bool> lost{false};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = w; i < subs.size(); i += workers) {
        Subscriber& s = subs[i];
        if (!send_all(s.fd, "subscribe 0\n")) {
          lost = true;
          continue;
        }
        // ok line + every missed epoch.
        for (std::uint64_t k = 0; k <= gap; ++k) {
          if (!recv_line(s.fd, s.buf, nullptr)) {
            lost = true;
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  if (lost.load()) {
    std::fprintf(stderr, "bench_feed: catch-up lost a subscriber\n");
    std::exit(1);
  }
  const std::uint64_t total_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  const std::uint64_t per_receiver = total_ns / n_subs;
  g_report.add(benchjson::Record{"catchup_storm", n_subs, gap, per_receiver,
                                 per_receiver, hist[0].size() * gap * n_subs,
                                 1});
  std::printf("%-24s %8zu subs   gap %llu   %10.3f us/receiver   "
              "(%.0f receivers/s)\n",
              "catchup_storm", n_subs, static_cast<unsigned long long>(gap),
              per_receiver / 1e3, 1e9 * n_subs / total_ns);
  for (Subscriber& s : subs) ::close(s.fd);
}

}  // namespace

/// Both ends of every subscriber connection live in this process (the
/// reactor is in-process), so a herd of S costs ~2S fds. Tries to raise
/// the soft — and, when privileged, the hard — limit to `want`; returns
/// the budget actually available.
std::size_t fd_budget(std::size_t want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur >= want) return rl.rlim_cur;
  rlimit target = rl;
  target.rlim_cur = want;
  if (target.rlim_max < want) target.rlim_max = want;
  if (::setrlimit(RLIMIT_NOFILE, &target) == 0) return want;
  rl.rlim_cur = rl.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &rl);
  return static_cast<std::size_t>(rl.rlim_max);
}

int main() {
  const bool smoke = benchjson::smoke();
  std::vector<std::size_t> sizes = smoke
                                       ? std::vector<std::size_t>{100, 1000}
                                       : std::vector<std::size_t>{1000, 10000};
  const std::size_t samples = smoke ? 5 : 20;

  const std::size_t budget = fd_budget(2 * sizes.back() + 512);
  const std::size_t cap = (budget - std::min<std::size_t>(budget, 512)) / 2;
  for (std::size_t& n : sizes) {
    if (n > cap) {
      std::printf("# fd budget %zu clamps the %zu-subscriber herd to %zu\n",
                  budget, n, cap);
      n = cap;
    }
  }

  std::printf("E16: streaming feed fan-out (%s profile)\n",
              smoke ? "smoke" : "full");
  std::vector<std::uint64_t> medians;
  std::vector<std::uint64_t> floors;
  for (const std::size_t n : sizes) {
    medians.push_back(bench_broadcast(n, samples, 1536));
  }
  for (const std::size_t n : sizes) floors.push_back(kernel_send_floor(n, 1570));
  for (const std::size_t n : sizes) bench_catchup(n, /*gap=*/3);

  // The scaling claim: growing the herd 10x costs at most ~10x the
  // broadcast-to-all-current latency — the frame is serialized once and
  // fan-out adds only per-socket sends, never per-subscriber work that
  // grows with the herd. The kernel's own per-send cost is NOT flat in the
  // socket count on small-cache hosts, so the claim is checked on the
  // floor-normalized ratio: feed scaling divided by what the bare
  // send() syscall loop scales at on the same host.
  const double raw = medians.front() == 0
                         ? 0.0
                         : static_cast<double>(medians.back()) / medians.front();
  const double floor_scale =
      floors.front() == 0 ? 1.0
                          : static_cast<double>(floors.back()) / floors.front();
  const double normalized = floor_scale == 0.0 ? raw : raw / floor_scale;
  std::printf("herd %zu -> %zu (%.1fx): broadcast-to-all-current median "
              "ratio %.2fx raw, %.2fx over the kernel send floor (floor "
              "itself scales %.2fx)\n",
              sizes.front(), sizes.back(),
              static_cast<double>(sizes.back()) / sizes.front(), raw,
              normalized, floor_scale);
  return g_report.write() ? 0 : 1;
}
