// E6: epsilon-black-box confirmation (paper Sect. 6.2).
// Claims: confirmation (a covered coalition yields an accusation inside T),
// soundness (never an innocent), and Chernoff/Hoeffding-driven query counts
// scaling like O((m/eps)^2 log(1/conf)) per estimate.
#include <cstdio>

#include <chrono>

#include "bench_json.h"
#include "tracing/blackbox_search.h"
#include "tracing/pirate.h"

using namespace dfky;

namespace {

benchjson::Report g_report("bbc");

struct World {
  SystemParams sp;
  std::unique_ptr<SecurityManager> mgr;
  std::vector<SecurityManager::AddedUser> users;

  World(std::size_t v, std::size_t n, std::uint64_t seed) : sp(make(v)) {
    ChaChaRng rng(seed);
    mgr = std::make_unique<SecurityManager>(sp, rng);
    for (std::size_t i = 0; i < n; ++i) users.push_back(mgr->add_user(rng));
  }

  static SystemParams make(std::size_t v) {
    ChaChaRng rng(42);
    return SystemParams::create(Group(GroupParams::named(ParamId::kTest128)),
                                v, rng);
  }
};

void coalition_sweep() {
  std::printf(
      "# E6a: BBC vs coalition size (v = 12, perfect decoder, eps = 0.9)\n");
  std::printf("%10s %10s %12s %16s\n", "|T|=|Susp|", "accused?", "in T?",
              "decoder-queries");
  const std::vector<std::size_t> ms =
      benchjson::smoke() ? std::vector<std::size_t>{1, 2}
                         : std::vector<std::size_t>{1, 2, 3, 4, 6};
  for (std::size_t m : ms) {
    World w(12, 16, 100 + m);
    ChaChaRng rng(200 + m);
    std::vector<UserKey> keys;
    std::vector<UserRecord> suspects;
    for (std::size_t i = 0; i < m; ++i) {
      keys.push_back(w.users[i].key);
      suspects.push_back(w.mgr->users()[w.users[i].id]);
    }
    RepresentationDecoder dec(
        w.sp, build_pirate_representation(w.sp, w.mgr->public_key(), keys, rng));
    BbcOptions opt;
    opt.epsilon = 0.9;
    opt.samples_override = benchjson::smoke() ? 10 : 40;
    const auto t0 = std::chrono::steady_clock::now();
    const BbcResult r =
        black_box_confirm(w.sp, w.mgr->master_secret(), w.mgr->public_key(),
                          suspects, dec, opt, rng);
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    bool in_coalition = false;
    if (r.accused) {
      for (std::size_t i = 0; i < m; ++i) {
        if (*r.accused == w.users[i].id) in_coalition = true;
      }
    }
    std::printf("%10zu %10s %12s %16zu\n", m, r.accused ? "yes" : "no",
                r.accused ? (in_coalition ? "yes" : "NO!") : "-", r.queries);
    // n = coalition size; bytes field reused for decoder query count.
    g_report.add({"bbc_confirm", m, 12, ns, ns, r.queries, 1});
  }
}

void epsilon_sweep() {
  std::printf(
      "\n# E6b: BBC vs decoder quality eps (v = 8, |T| = 2, derived sample "
      "counts, confidence 1e-3)\n");
  std::printf("%8s %10s %12s %16s %14s\n", "eps", "accused?", "in T?",
              "decoder-queries", "est-delta(T)");
  for (const double eps : {0.9, 0.7, 0.5, 0.3}) {
    World w(8, 12, 300);
    ChaChaRng rng(400 + static_cast<int>(eps * 10));
    std::vector<UserKey> keys = {w.users[0].key, w.users[1].key};
    std::vector<UserRecord> suspects = {w.mgr->users()[w.users[0].id],
                                        w.mgr->users()[w.users[1].id]};
    auto inner = std::make_unique<RepresentationDecoder>(
        w.sp,
        build_pirate_representation(w.sp, w.mgr->public_key(), keys, rng));
    // Decoder succeeds on ~ (eps + 0.05) fraction — just above threshold.
    NoisyDecoder dec(w.sp, std::move(inner), std::min(1.0, eps + 0.05),
                     /*seed=*/777);
    BbcOptions opt;
    opt.epsilon = eps;
    opt.confidence = 1e-3;
    opt.samples_override = 0;  // use the Hoeffding-derived count
    const BbcResult r =
        black_box_confirm(w.sp, w.mgr->master_secret(), w.mgr->public_key(),
                          suspects, dec, opt, rng);
    bool in_coalition = false;
    if (r.accused) {
      in_coalition =
          *r.accused == w.users[0].id || *r.accused == w.users[1].id;
    }
    std::printf("%8.2f %10s %12s %16zu %14.3f\n", eps,
                r.accused ? "yes" : "no",
                r.accused ? (in_coalition ? "yes" : "NO!") : "-", r.queries,
                r.success_curve.empty() ? 0.0 : r.success_curve.front());
  }
}

void soundness_sweep() {
  std::printf(
      "\n# E6c: soundness — suspects include innocents (v = 12, |T| = 2)\n");
  std::printf("%14s %10s %18s\n", "|Susp|/inno", "accused", "verdict");
  for (std::size_t innocents : {1u, 2u, 4u}) {
    World w(12, 16, 500 + innocents);
    ChaChaRng rng(600 + innocents);
    std::vector<UserKey> keys = {w.users[0].key, w.users[1].key};
    std::vector<UserRecord> suspects = {w.mgr->users()[w.users[0].id],
                                        w.mgr->users()[w.users[1].id]};
    for (std::size_t i = 0; i < innocents; ++i) {
      suspects.push_back(w.mgr->users()[w.users[2 + i].id]);
    }
    RepresentationDecoder dec(
        w.sp,
        build_pirate_representation(w.sp, w.mgr->public_key(), keys, rng));
    BbcOptions opt;
    opt.epsilon = 0.9;
    opt.samples_override = 40;
    const BbcResult r =
        black_box_confirm(w.sp, w.mgr->master_secret(), w.mgr->public_key(),
                          suspects, dec, opt, rng);
    const bool ok = r.accused && (*r.accused == w.users[0].id ||
                                  *r.accused == w.users[1].id);
    std::printf("%10zu/%-3zu %10s %18s\n", suspects.size(), innocents,
                r.accused ? std::to_string(*r.accused).c_str() : "?",
                ok ? "traitor accused" : (r.accused ? "INNOCENT!" : "no one"));
  }
}

void uncovered_sweep() {
  std::printf(
      "\n# E6d: uncovered coalition — Susp misses a traitor: must output ?\n");
  std::printf("%14s %10s\n", "covered", "output");
  for (const bool covered : {true, false}) {
    World w(8, 12, 700 + (covered ? 1 : 0));
    ChaChaRng rng(800 + (covered ? 1 : 0));
    std::vector<UserKey> keys = {w.users[0].key, w.users[1].key};
    std::vector<UserRecord> suspects = {w.mgr->users()[w.users[0].id]};
    if (covered) suspects.push_back(w.mgr->users()[w.users[1].id]);
    RepresentationDecoder dec(
        w.sp,
        build_pirate_representation(w.sp, w.mgr->public_key(), keys, rng));
    BbcOptions opt;
    opt.epsilon = 0.9;
    opt.samples_override = 40;
    const BbcResult r =
        black_box_confirm(w.sp, w.mgr->master_secret(), w.mgr->public_key(),
                          suspects, dec, opt, rng);
    std::printf("%14s %10s\n", covered ? "yes" : "no",
                r.accused ? "accused" : "?");
  }
}

void subset_search_sweep() {
  std::printf(
      "\n# E6e: full black-box tracing by subset search — C(pool, |T|)\n"
      "#      subsets in the worst case (the paper: exponential in m;\n"
      "#      partial intelligence shrinks the pool)\n");
  std::printf("%10s %6s %14s %16s %12s\n", "pool", "|T|", "subsets-tried",
              "decoder-queries", "found-all?");
  for (const std::size_t pool_size : {4u, 8u, 12u}) {
    World w(8, 16, 900 + pool_size);
    ChaChaRng rng(1000 + pool_size);
    // Traitors are the last two members of the pool (worst-ish case for the
    // lexicographic subset walk).
    std::vector<UserKey> keys = {w.users[pool_size - 2].key,
                                 w.users[pool_size - 1].key};
    RepresentationDecoder dec(
        w.sp,
        build_pirate_representation(w.sp, w.mgr->public_key(), keys, rng));
    std::vector<UserRecord> pool;
    for (std::size_t i = 0; i < pool_size; ++i) {
      pool.push_back(w.mgr->users()[w.users[i].id]);
    }
    BbcOptions opt;
    opt.epsilon = 0.9;
    opt.samples_override = 25;
    const BlackBoxTraceResult r =
        black_box_trace(w.sp, w.mgr->master_secret(), w.mgr->public_key(),
                        pool, 2, dec, opt, rng);
    const bool found_all = r.traitors.size() == 2;
    std::printf("%10zu %6d %14zu %16zu %12s\n", pool_size, 2,
                r.subsets_tried, r.queries, found_all ? "yes" : "NO!");
  }
}

}  // namespace

int main() {
  std::printf("=== E6: black-box confirmation ===\n\n");
  coalition_sweep();
  if (!benchjson::smoke()) {
    epsilon_sweep();
    soundness_sweep();
    uncovered_sweep();
    subset_search_sweep();
  }
  return g_report.write() ? 0 : 1;
}
