// E12: daemon group commit — ack throughput under concurrent clients.
// Claim: funneling concurrent mutations through one committer thread that
// batches their WAL records into a single append+fsync amortizes the
// durability cost; at 8 clients the acknowledged-mutation throughput is
// >= 4x the fsync-per-mutation baseline. Measured on a real filesystem
// (the fsync is the whole point).
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/manager.h"
#include "daemon/group_commit.h"
#include "rng/chacha_rng.h"
#include "store/file_io.h"
#include "store/store.h"

using namespace dfky;

namespace {

benchjson::Report g_report("daemon");

constexpr std::size_t kV = 8;

StoreOptions no_rotation() {
  StoreOptions opts;
  opts.snapshot_every = std::size_t{1} << 30;
  return opts;
}

void remove_store_dir(FileIo& io, const std::string& dir) {
  if (!io.is_dir(dir)) return;
  for (const std::string& name : io.list(dir)) io.remove(dir + "/" + name);
  ::rmdir(dir.c_str());
}

struct RunResult {
  std::uint64_t ns_per_ack = 0;      // median over repetitions
  std::uint64_t ns_per_ack_p95 = 0;  // p95 over repetitions
  std::uint64_t acks = 0;            // per repetition
};

/// `clients` threads, `per_client` durable add_user acks each; per-ack
/// wall time, median over a few repetitions. `grouped` switches between
/// the fsync-per-mutation baseline (a plain mutex around the store) and
/// the daemon's GroupCommit path.
RunResult run_clients(FileIo& io, const std::string& dir,
                      const SystemParams& sp, std::size_t clients,
                      std::size_t per_client, std::size_t reps, bool grouped) {
  ChaChaRng setup_rng(7);
  remove_store_dir(io, dir);
  StateStore store = StateStore::create(io, dir, SecurityManager(sp, setup_rng),
                                        setup_rng, no_rotation());
  ChaChaRng rng(11);
  std::mutex rng_mu;
  const auto one_rep = [&] {
    std::vector<std::thread> threads;
    if (grouped) {
      std::shared_mutex state_mu;
      daemon::GroupCommit commits(store, state_mu);
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          for (std::size_t i = 0; i < per_client; ++i) {
            commits.run([&] {
              std::lock_guard lk(rng_mu);
              store.add_user(rng);
            });
          }
        });
      }
      for (std::thread& t : threads) t.join();
      // GroupCommit's destructor drains and turns batching off here.
    } else {
      std::mutex store_mu;
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          for (std::size_t i = 0; i < per_client; ++i) {
            std::scoped_lock lk(store_mu, rng_mu);
            store.add_user(rng);  // durable (fsynced) before it returns
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }
  };
  const benchjson::Timing t = benchjson::time_samples(reps, one_rep);
  RunResult r;
  r.acks = clients * per_client;
  r.ns_per_ack = t.median_ns / r.acks;
  r.ns_per_ack_p95 = t.p95_ns / r.acks;
  remove_store_dir(io, dir);
  return r;
}

}  // namespace

int main() {
  std::printf("=== E12: daemon group commit (v = %zu, 128-bit test group) ===\n\n",
              kV);
  const std::size_t per_client = benchjson::smoke() ? 4 : 16;
  const std::size_t reps = benchjson::smoke() ? 2 : 3;
  ChaChaRng rng(42);
  const SystemParams sp =
      SystemParams::create(Group(GroupParams::named(ParamId::kTest128)), kV,
                           rng);

  char tmpl[] = "/tmp/dfky_bench_daemon_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "bench_daemon: mkdtemp failed\n");
    return 1;
  }
  RealFileIo io;
  const std::string dir = std::string(tmpl) + "/sys";

  std::printf("%8s %16s %16s %9s\n", "clients", "single-us/ack",
              "grouped-us/ack", "speedup");
  double speedup_at_8 = 0;
  for (const std::size_t clients : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const RunResult single =
        run_clients(io, dir, sp, clients, per_client, reps, false);
    const RunResult grouped =
        run_clients(io, dir, sp, clients, per_client, reps, true);
    g_report.add({"ack_single", clients, kV, single.ns_per_ack,
                  single.ns_per_ack_p95, 0, single.acks * reps});
    g_report.add({"ack_grouped", clients, kV, grouped.ns_per_ack,
                  grouped.ns_per_ack_p95, 0, grouped.acks * reps});
    const double speedup = grouped.ns_per_ack == 0
                               ? 0.0
                               : static_cast<double>(single.ns_per_ack) /
                                     static_cast<double>(grouped.ns_per_ack);
    if (clients == 8) speedup_at_8 = speedup;
    std::printf("%8zu %16.1f %16.1f %8.1fx\n", clients,
                static_cast<double>(single.ns_per_ack) / 1e3,
                static_cast<double>(grouped.ns_per_ack) / 1e3, speedup);
  }
  std::printf("\ngroup-commit ack-throughput speedup at 8 clients: %.1fx "
              "(acceptance floor 4x)\n",
              speedup_at_8);
  ::rmdir(tmpl);
  return g_report.write() ? 0 : 1;
}
