// E12: daemon group commit — ack throughput under concurrent clients.
// Claim: funneling concurrent mutations through one committer thread that
// batches their WAL records into a single append+fsync amortizes the
// durability cost; at 8 clients the acknowledged-mutation throughput is
// >= 4x the fsync-per-mutation baseline. Measured on a real filesystem
// (the fsync is the whole point).
//
// E13: sharded daemon — ack throughput scaling across shards. Claim:
// partitioning the store across N shards, each with its own committer
// thread and WAL, parallelizes both the add-user crypto (per-shard Rng)
// and the fsyncs; at 8 clients on >= 4 cores the acknowledged-mutation
// throughput with 4 shards is >= 2x the single-shard figure. The scaling
// is hardware-conditional and the table prints the detected core count:
// on a single core sharding has nothing to parallelize, so the smaller
// per-shard commit batches amortize the fsync worse and sub-1x is the
// expected (and correct) measurement — the regression gate for such hosts
// is the checked-in baseline (tests/bench_baseline_check.sh), not the
// scaling ratio.
// E14: reactor front end — ack throughput and tail latency with a large
// idle-connection herd attached. Claim: because an idle connection costs
// the epoll reactor one fd and a few hundred bytes (not two threads and
// two stacks), active clients' ack throughput and p99 latency stay flat
// as the herd grows 10x; the thread-per-connection front end this
// replaced could not hold the 10k herd at all.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/manager.h"
#include "daemon/daemon.h"
#include "daemon/group_commit.h"
#include "daemon/reactor.h"
#include "daemon/shard.h"
#include "obs/trace.h"
#include "rng/chacha_rng.h"
#include "store/file_io.h"
#include "store/store.h"

using namespace dfky;

namespace {

benchjson::Report g_report("daemon");

constexpr std::size_t kV = 8;

StoreOptions no_rotation() {
  StoreOptions opts;
  opts.snapshot_every = std::size_t{1} << 30;
  return opts;
}

void remove_store_dir(FileIo& io, const std::string& dir) {
  if (!io.is_dir(dir)) return;
  for (const std::string& name : io.list(dir)) io.remove(dir + "/" + name);
  ::rmdir(dir.c_str());
}

struct RunResult {
  std::uint64_t ns_per_ack = 0;      // median over repetitions
  std::uint64_t ns_per_ack_p95 = 0;  // p95 over repetitions
  std::uint64_t acks = 0;            // per repetition
};

/// `clients` threads, `per_client` durable add_user acks each; per-ack
/// wall time, median over a few repetitions. `grouped` switches between
/// the fsync-per-mutation baseline (a plain mutex around the store) and
/// the daemon's GroupCommit path.
RunResult run_clients(FileIo& io, const std::string& dir,
                      const SystemParams& sp, std::size_t clients,
                      std::size_t per_client, std::size_t reps, bool grouped) {
  ChaChaRng setup_rng(7);
  remove_store_dir(io, dir);
  StateStore store = StateStore::create(io, dir, SecurityManager(sp, setup_rng),
                                        setup_rng, no_rotation());
  ChaChaRng rng(11);
  std::mutex rng_mu;
  const auto one_rep = [&] {
    std::vector<std::thread> threads;
    if (grouped) {
      std::shared_mutex state_mu;
      daemon::GroupCommit commits(store, state_mu);
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          for (std::size_t i = 0; i < per_client; ++i) {
            commits.run([&] {
              std::lock_guard lk(rng_mu);
              store.add_user(rng);
            });
          }
        });
      }
      for (std::thread& t : threads) t.join();
      // GroupCommit's destructor drains and turns batching off here.
    } else {
      std::mutex store_mu;
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          for (std::size_t i = 0; i < per_client; ++i) {
            std::scoped_lock lk(store_mu, rng_mu);
            store.add_user(rng);  // durable (fsynced) before it returns
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }
  };
  const benchjson::Timing t = benchjson::time_samples(reps, one_rep);
  RunResult r;
  r.acks = clients * per_client;
  r.ns_per_ack = t.median_ns / r.acks;
  r.ns_per_ack_p95 = t.p95_ns / r.acks;
  remove_store_dir(io, dir);
  return r;
}

void remove_shard_root(FileIo& io, const std::string& dir) {
  if (!io.is_dir(dir)) return;
  for (std::size_t i = 0; io.is_dir(dir + "/" + shard_dir_name(i)); ++i) {
    remove_store_dir(io, dir + "/" + shard_dir_name(i));
  }
  ::rmdir(dir.c_str());
}

/// E13: `clients` threads issuing durable add-user acks through a
/// ShardRouter over `shards` stores — the daemon's full routing + per-shard
/// group-commit path, socket-free.
RunResult run_sharded(FileIo& io, const std::string& dir,
                      const SystemParams& sp, std::size_t shards,
                      std::size_t clients, std::size_t per_client,
                      std::size_t reps) {
  ChaChaRng setup_rng(7);
  remove_shard_root(io, dir);
  std::vector<SecurityManager> managers;
  for (std::size_t i = 0; i < shards; ++i) managers.emplace_back(sp, setup_rng);
  daemon::ShardRouter router(
      create_shard_set(io, dir, std::move(managers), setup_rng, no_rotation()),
      [](std::size_t k) { return std::make_unique<ChaChaRng>(11 + k); },
      [] { std::fprintf(stderr, "bench_daemon: commit sync failed\n"); });
  const auto one_rep = [&] {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (std::size_t i = 0; i < per_client; ++i) {
          router.add_user();  // durable on its shard before it returns
        }
      });
    }
    for (std::thread& t : threads) t.join();
  };
  const benchjson::Timing t = benchjson::time_samples(reps, one_rep);
  RunResult r;
  r.acks = clients * per_client;
  r.ns_per_ack = t.median_ns / r.acks;
  r.ns_per_ack_p95 = t.p95_ns / r.acks;
  router.stop_commits();
  return r;
}

/// E15: the full request path (RequestHandler over a 1-shard router, the
/// same code the socket loop calls) with per-request tracing on vs off.
/// Every request allocates a trace id, stamps eight spans across three
/// threads and files the trace in the ring when traced; the claim is that
/// this costs < 2% of ack throughput, because the expensive part of an ack
/// is the fsync, not the bookkeeping. With DFKY_OBS=OFF both runs compile
/// to the identical untraced path and the overhead reads as noise.
RunResult run_handler(FileIo& io, const std::string& dir,
                      const SystemParams& sp, std::size_t clients,
                      std::size_t per_client, std::size_t reps, bool traced) {
  ChaChaRng setup_rng(7);
  remove_shard_root(io, dir);
  std::vector<SecurityManager> managers;
  managers.emplace_back(sp, setup_rng);
  daemon::ShardRouter router(
      create_shard_set(io, dir, std::move(managers), setup_rng, no_rotation()),
      [](std::size_t k) { return std::make_unique<ChaChaRng>(11 + k); },
      [] { std::fprintf(stderr, "bench_daemon: commit sync failed\n"); });
  daemon::RequestHandler handler(router);
  obs::set_tracing(traced);
  const auto one_rep = [&] {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (std::size_t i = 0; i < per_client; ++i) {
          handler.handle("add-user");
        }
      });
    }
    for (std::thread& t : threads) t.join();
  };
  const benchjson::Timing t = benchjson::time_samples(reps, one_rep);
  obs::set_tracing(true);
  RunResult r;
  r.acks = clients * per_client;
  r.ns_per_ack = t.median_ns / r.acks;
  r.ns_per_ack_p95 = t.p95_ns / r.acks;
  router.stop_commits();
  remove_shard_root(io, dir);
  return r;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line) {
  std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_line(int fd, std::string& buf, std::string& line) {
  for (;;) {
    const std::size_t pos = buf.find('\n');
    if (pos != std::string::npos) {
      line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

struct ReactorResult {
  std::uint64_t ns_per_ack = 0;
  std::uint64_t p99_latency_ns = 0;
  std::uint64_t acks = 0;
  std::size_t idle_held = 0;
};

/// E14: the daemon's real serve path — a Reactor over a listening unix
/// socket, `idle` held-open idle connections, `active` clients each
/// doing `per` request/response add-user roundtrips on its own
/// connection. Reports per-ack wall time across the active phase and
/// the p99 of the individual roundtrip latencies.
ReactorResult run_reactor(FileIo& io, const std::string& dir,
                          const SystemParams& sp, const std::string& sock,
                          std::size_t idle, std::size_t active,
                          std::size_t per) {
  ChaChaRng setup_rng(7);
  remove_shard_root(io, dir);
  std::vector<SecurityManager> managers;
  managers.emplace_back(sp, setup_rng);
  daemon::ShardRouter router(
      create_shard_set(io, dir, std::move(managers), setup_rng, no_rotation()),
      [](std::size_t k) { return std::make_unique<ChaChaRng>(11 + k); },
      [] { std::fprintf(stderr, "bench_daemon: commit sync failed\n"); });
  daemon::RequestHandler handler(router);

  ::unlink(sock.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock.c_str(), sizeof addr.sun_path - 1);
  if (lfd < 0 ||
      ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(lfd, SOMAXCONN) != 0) {
    std::fprintf(stderr, "bench_daemon: cannot listen on %s: %s\n",
                 sock.c_str(), std::strerror(errno));
    std::exit(1);
  }
  int wake[2];
  if (::pipe2(wake, O_CLOEXEC) != 0) std::exit(1);

  daemon::ReactorOptions ropts;
  ropts.listen_fd = lfd;
  ropts.wake_fd = wake[0];
  ropts.workers = 8;
  daemon::Reactor reactor(ropts, [&](const std::string& line) {
    const daemon::RequestHandler::Result res = handler.handle(line);
    return daemon::Reactor::Result{res.response, res.shutdown};
  });
  std::thread serving([&] { reactor.run(); });

  // The idle herd: connected, counted by the reactor, then silent.
  std::vector<int> held;
  held.reserve(idle);
  for (std::size_t i = 0; i < idle; ++i) {
    const int fd = connect_unix(sock);
    if (fd < 0) break;  // client- or server-side fd ceiling; report less
    held.push_back(fd);
  }

  using Clock = std::chrono::steady_clock;
  std::vector<std::vector<std::uint64_t>> lat(active);
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(active);
  for (std::size_t c = 0; c < active; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_unix(sock);
      if (fd < 0) return;
      std::string buf;
      std::string resp;
      lat[c].reserve(per);
      for (std::size_t i = 0; i < per; ++i) {
        const auto s = Clock::now();
        if (!send_line(fd, "@" + std::to_string(i) + " add-user")) break;
        if (!recv_line(fd, buf, resp)) break;
        lat[c].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - s)
                .count()));
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  const auto wall = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());

  for (const int fd : held) ::close(fd);
  const char b = 1;
  [[maybe_unused]] const ssize_t wn = ::write(wake[1], &b, 1);
  serving.join();
  ::close(wake[0]);
  ::close(wake[1]);
  ::close(lfd);
  ::unlink(sock.c_str());
  router.stop_commits();
  remove_shard_root(io, dir);

  ReactorResult r;
  r.idle_held = held.size();
  std::vector<std::uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  r.acks = all.size();
  if (!all.empty()) {
    r.ns_per_ack = wall / all.size();
    std::sort(all.begin(), all.end());
    r.p99_latency_ns = all[all.size() * 99 / 100 == all.size()
                              ? all.size() - 1
                              : all.size() * 99 / 100];
  }
  return r;
}

}  // namespace

int main() {
  std::printf("=== E12: daemon group commit (v = %zu, 128-bit test group) ===\n\n",
              kV);
  const std::size_t per_client = benchjson::smoke() ? 4 : 16;
  const std::size_t reps = benchjson::smoke() ? 2 : 3;
  ChaChaRng rng(42);
  const SystemParams sp =
      SystemParams::create(Group(GroupParams::named(ParamId::kTest128)), kV,
                           rng);

  char tmpl[] = "/tmp/dfky_bench_daemon_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "bench_daemon: mkdtemp failed\n");
    return 1;
  }
  RealFileIo io;
  const std::string dir = std::string(tmpl) + "/sys";

  std::printf("%8s %16s %16s %9s\n", "clients", "single-us/ack",
              "grouped-us/ack", "speedup");
  double speedup_at_8 = 0;
  for (const std::size_t clients : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const RunResult single =
        run_clients(io, dir, sp, clients, per_client, reps, false);
    const RunResult grouped =
        run_clients(io, dir, sp, clients, per_client, reps, true);
    g_report.add({"ack_single", clients, kV, single.ns_per_ack,
                  single.ns_per_ack_p95, 0, single.acks * reps});
    g_report.add({"ack_grouped", clients, kV, grouped.ns_per_ack,
                  grouped.ns_per_ack_p95, 0, grouped.acks * reps});
    const double speedup = grouped.ns_per_ack == 0
                               ? 0.0
                               : static_cast<double>(single.ns_per_ack) /
                                     static_cast<double>(grouped.ns_per_ack);
    if (clients == 8) speedup_at_8 = speedup;
    std::printf("%8zu %16.1f %16.1f %8.1fx\n", clients,
                static_cast<double>(single.ns_per_ack) / 1e3,
                static_cast<double>(grouped.ns_per_ack) / 1e3, speedup);
  }
  std::printf("\ngroup-commit ack-throughput speedup at 8 clients: %.1fx "
              "(acceptance floor 4x)\n",
              speedup_at_8);

  // E13 runs on a 512-bit group: sharding parallelizes the per-shard
  // committers' add-user crypto alongside their fsyncs, so the workload
  // carries realistic field-arithmetic cost rather than the toy group's.
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\n=== E13: sharded daemon (8 clients, v = %zu, 512-bit group, "
              "%u core(s)) ===\n\n",
              kV, cores);
  const SystemParams sp512 =
      SystemParams::create(Group(GroupParams::named(ParamId::kSec512)), kV,
                           rng);
  const std::size_t sharded_clients = 8;
  const std::string root = std::string(tmpl) + "/shards";
  std::printf("%8s %16s %9s\n", "shards", "sharded-us/ack", "scaling");
  std::uint64_t one_shard_ns = 0;
  double scaling_at_4 = 0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    const RunResult r = run_sharded(io, root, sp512, shards, sharded_clients,
                                    per_client, reps);
    g_report.add({"ack_sharded", shards, kV, r.ns_per_ack, r.ns_per_ack_p95, 0,
                  r.acks * reps});
    if (shards == 1) one_shard_ns = r.ns_per_ack;
    const double scaling = r.ns_per_ack == 0
                               ? 0.0
                               : static_cast<double>(one_shard_ns) /
                                     static_cast<double>(r.ns_per_ack);
    if (shards == 4) scaling_at_4 = scaling;
    std::printf("%8zu %16.1f %8.1fx\n", shards,
                static_cast<double>(r.ns_per_ack) / 1e3, scaling);
  }
  std::printf("\nsharded ack-throughput scaling at 4 shards / 8 clients: "
              "%.1fx (acceptance floor 2x on >= 4 cores)\n",
              scaling_at_4);
  if (cores < 4) {
    std::printf("NOTE: only %u core(s) detected — the committers cannot run "
                "in parallel here, so the single shard's larger commit "
                "batches win and the floor does not apply; gate this host "
                "with tests/bench_baseline_check.sh instead\n",
                cores);
  }
  remove_shard_root(io, root);

  // E14 is in-process on both ends, so every held connection costs TWO
  // fds here; budget against the raised hard limit and scale the herd
  // down (with a note) if it cannot fit.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
    ::getrlimit(RLIMIT_NOFILE, &nofile);
  }
  const std::size_t idle_cap =
      nofile.rlim_cur > 512 ? (static_cast<std::size_t>(nofile.rlim_cur) - 512) / 2
                            : 64;
  std::printf("\n=== E14: reactor front end (idle herd + 4 active clients, "
              "v = %zu, 128-bit group) ===\n\n",
              kV);
  const std::size_t reactor_active = 4;
  const std::size_t reactor_per = benchjson::smoke() ? 25 : 250;
  const std::string rdir = std::string(tmpl) + "/reactor";
  const std::string rsock = std::string(tmpl) + "/reactor.sock";
  std::printf("%10s %12s %14s %14s\n", "idle-conns", "acks", "us/ack",
              "p99-us");
  for (std::size_t idle : benchjson::smoke()
                              ? std::vector<std::size_t>{100, 1000}
                              : std::vector<std::size_t>{1000, 10000}) {
    if (idle > idle_cap) {
      std::printf("NOTE: RLIMIT_NOFILE %llu caps the in-process herd at %zu "
                  "(wanted %zu)\n",
                  static_cast<unsigned long long>(nofile.rlim_cur), idle_cap,
                  idle);
      idle = idle_cap;
    }
    const ReactorResult r = run_reactor(io, rdir, sp, rsock, idle,
                                        reactor_active, reactor_per);
    if (r.idle_held < idle) {
      std::printf("NOTE: herd fell short: held %zu of %zu idle conns\n",
                  r.idle_held, idle);
    }
    g_report.add({"ack_reactor", idle, kV, r.ns_per_ack, r.p99_latency_ns, 0,
                  r.acks});
    std::printf("%10zu %12llu %14.1f %14.1f\n", idle,
                static_cast<unsigned long long>(r.acks),
                static_cast<double>(r.ns_per_ack) / 1e3,
                static_cast<double>(r.p99_latency_ns) / 1e3);
  }
  std::printf("\nreactor ack p99 at the large herd should stay within ~2x of "
              "the small herd's (idle connections are fd-cheap, not "
              "thread-expensive); gate with tests/bench_baseline_check.sh\n");

  // E15 reuses the 128-bit group: the overhead under test is per-request
  // bookkeeping, which a heavier group would only dilute.
  std::printf("\n=== E15: request tracing overhead (8 clients, full request "
              "path) ===\n\n");
  const std::size_t trace_clients = 8;
  const std::string tdir = std::string(tmpl) + "/traced";
  const RunResult untraced =
      run_handler(io, tdir, sp, trace_clients, per_client, reps, false);
  const RunResult traced =
      run_handler(io, tdir, sp, trace_clients, per_client, reps, true);
  g_report.add({"ack_untraced", trace_clients, kV, untraced.ns_per_ack,
                untraced.ns_per_ack_p95, 0, untraced.acks * reps});
  g_report.add({"ack_traced", trace_clients, kV, traced.ns_per_ack,
                traced.ns_per_ack_p95, 0, traced.acks * reps});
  const double overhead =
      untraced.ns_per_ack == 0
          ? 0.0
          : 100.0 * (static_cast<double>(traced.ns_per_ack) -
                     static_cast<double>(untraced.ns_per_ack)) /
                static_cast<double>(untraced.ns_per_ack);
  std::printf("%16s %16s %9s\n", "untraced-us/ack", "traced-us/ack",
              "overhead");
  std::printf("%16.1f %16.1f %8.1f%%\n",
              static_cast<double>(untraced.ns_per_ack) / 1e3,
              static_cast<double>(traced.ns_per_ack) / 1e3, overhead);
  std::printf("\ntracing overhead at %zu clients: %.1f%% (acceptance "
              "ceiling 2%%; smoke runs are fsync-noise dominated — gate "
              "with the checked-in baseline)\n",
              trace_clients, overhead);

  ::rmdir(tmpl);
  return g_report.write() ? 0 : 1;
}
