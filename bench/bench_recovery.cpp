// E10: receiver catch-up recovery (DESIGN.md "Channel model and recovery
// protocol"). Claims: a receiver that slept through g New-period transitions
// recovers with one request/response round whose size is linear in g, up to
// the manager's archive bound K (beyond which it is terminally
// unrecoverable); under a lossy channel the bounded retry-with-backoff
// still converges, with attempt counts growing gracefully with loss.
#include <cstdio>

#include "bench_json.h"
#include "broadcast/faulty_bus.h"
#include "broadcast/recovery.h"
#include "core/manager.h"
#include "rng/chacha_rng.h"

using namespace dfky;

namespace {

benchjson::Report g_report("recovery");

SystemParams make_params() {
  ChaChaRng rng(42);
  return SystemParams::create(Group(GroupParams::named(ParamId::kTest128)), 3,
                              rng);
}

struct RecoveryRun {
  bool recovered = false;
  bool unrecoverable = false;
  std::size_t probes = 0;          // content messages until recovered
  std::size_t requests = 0;
  std::size_t bundles = 0;
  std::size_t response_bytes = 0;  // kCatchUpResponse bytes on the wire
};

/// A receiver sleeps through `gap` transitions, then the channel (with the
/// given fault plan) carries content probes until it recovers or gives up.
RecoveryRun run_gap(const SystemParams& sp, std::size_t gap,
                    std::size_t archive_capacity, const FaultPlan& plan,
                    std::size_t max_probes) {
  ChaChaRng rng(1000 + gap);
  FaultyBus bus(plan);
  SecurityManager mgr(sp, rng);
  mgr.set_reset_archive_capacity(archive_capacity);
  ChaChaRng responder_rng(2000 + gap);
  CatchUpResponder responder(mgr, bus, responder_rng);

  const auto u = mgr.add_user(rng);
  for (std::size_t i = 0; i < gap; ++i) mgr.new_period(rng);

  SubscriberClient sub(sp, u.key, mgr.verification_key(), bus);
  RecoveryClient recovery(sub, bus, RecoveryPolicy{.attempt_budget = 32,
                                                   .backoff_base = 1,
                                                   .nonce = 7});
  ContentProvider tv("tv", sp, mgr.public_key(), bus);

  RecoveryRun run;
  const Bytes probe = {0x70};
  for (std::size_t i = 0; i < max_probes; ++i) {
    tv.broadcast(probe, rng);
    ++run.probes;
    // kCurrent alone is not "done": before the first delivered probe the
    // receiver still believes its stale period is current.
    if (sub.state() == ReceiverState::kCurrent && sub.period() == mgr.period())
      break;
    if (sub.state() == ReceiverState::kUnrecoverable) break;
  }
  run.recovered = sub.state() == ReceiverState::kCurrent &&
                  sub.period() == mgr.period();
  run.unrecoverable = sub.state() == ReceiverState::kUnrecoverable;
  run.requests = recovery.requests_sent();
  run.bundles = recovery.bundles_replayed();
  run.response_bytes = bus.bytes_sent(MsgType::kCatchUpResponse);
  return run;
}

void lossless_table(const SystemParams& sp) {
  std::printf(
      "# E10a: lossless catch-up vs gap size (archive capacity K = 8).\n"
      "#       One request bridges any gap <= K; response size is linear in\n"
      "#       the gap; past K the receiver is terminally unrecoverable.\n");
  std::printf("%6s %10s %10s %10s %14s %16s\n", "gap", "probes", "requests",
              "bundles", "resp-bytes", "outcome");
  const std::vector<std::size_t> gaps =
      benchjson::smoke() ? std::vector<std::size_t>{1, 4}
                         : std::vector<std::size_t>{1, 2, 4, 6, 8, 9, 12};
  for (std::size_t gap : gaps) {
    const RecoveryRun r = run_gap(sp, gap, /*archive_capacity=*/8,
                                  FaultPlan{.seed = 1}, /*max_probes=*/4);
    std::printf("%6zu %10zu %10zu %10zu %14zu %16s\n", gap, r.probes,
                r.requests, r.bundles, r.response_bytes,
                r.recovered        ? "recovered"
                : r.unrecoverable ? "UNRECOVERABLE"
                                  : "stale");
    g_report.add({"catchup", gap, 3, 0, 0, r.response_bytes, 1});
  }
}

void lossy_table(const SystemParams& sp) {
  std::printf(
      "\n# E10b: catch-up under loss (gap = 4, K = 16, drop applied to\n"
      "#       every message including requests and responses; probes keep\n"
      "#       flowing so retries tick).\n");
  std::printf("%8s %10s %10s %10s %16s\n", "drop", "probes", "requests",
              "bundles", "outcome");
  const std::vector<double> drops =
      benchjson::smoke() ? std::vector<double>{0.0, 0.25}
                         : std::vector<double>{0.0, 0.1, 0.25, 0.5};
  for (const double drop : drops) {
    const FaultPlan plan{.seed = 77, .drop_prob = drop};
    const RecoveryRun r =
        run_gap(sp, /*gap=*/4, /*archive_capacity=*/16, plan,
                /*max_probes=*/400);
    std::printf("%8.2f %10zu %10zu %10zu %16s\n", drop, r.probes, r.requests,
                r.bundles, r.recovered ? "recovered" : "stale");
    // n = drop probability in percent; bytes field reused for request count.
    g_report.add({"catchup_lossy",
                  static_cast<std::uint64_t>(drop * 100.0), 3, 0, 0,
                  r.requests, 1});
  }
}

}  // namespace

int main() {
  std::printf("=== E10: catch-up recovery latency vs gap size ===\n\n");
  const SystemParams sp = make_params();
  lossless_table(sp);
  lossy_table(sp);
  return g_report.write() ? 0 : 1;
}
