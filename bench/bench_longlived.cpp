// E9: long-lived operation (paper Sect. 2.1).
// Claim: the system supports an unlimited number of user additions and
// removals; per-period costs stay flat over the system lifetime — no drift
// with the total number of past operations. Receivers only keep O(1) state
// (their key) across periods.
#include <cstdio>

#include <chrono>

#include "bench_json.h"
#include "core/manager.h"
#include "core/receiver.h"
#include "rng/chacha_rng.h"

using namespace dfky;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t ms_to_ns(double ms) {
  return static_cast<std::uint64_t>(ms * 1e6);
}

}  // namespace

int main() {
  std::printf("=== E9: long-lived run — 30 periods, v = 8 (128-bit group) ===\n\n");
  const std::size_t v = 8;
  const std::size_t periods = benchjson::smoke() ? 4 : 30;
  benchjson::Report report("longlived");

  ChaChaRng rng(42);
  const SystemParams sp =
      SystemParams::create(Group(GroupParams::named(ParamId::kTest128)), v, rng);
  SecurityManager mgr(sp, rng, ResetMode::kHybrid);
  const auto survivor = mgr.add_user(rng);
  Receiver receiver(sp, survivor.key, mgr.verification_key());

  std::printf("%8s %12s %14s %14s %14s %12s\n", "period", "total-ops",
              "revoke-ms", "reset-bytes", "recv-upd-ms", "dec-ok");
  std::size_t total_ops = 0;
  for (std::size_t p = 0; p < periods; ++p) {
    // Fill the period: v revocations of fresh victims.
    double revoke_ms = 0;
    std::size_t reset_bytes = 0;
    double update_ms = 0;
    for (std::size_t i = 0; i < v + 1; ++i) {
      const auto victim = mgr.add_user(rng);
      ++total_ops;
      const auto t0 = std::chrono::steady_clock::now();
      const auto bundle = mgr.remove_user(victim.id, rng);
      revoke_ms += ms_since(t0);
      ++total_ops;
      if (bundle) {
        reset_bytes = bundle->wire_size(sp.group);
        const auto t1 = std::chrono::steady_clock::now();
        receiver.apply_reset(*bundle);
        update_ms = ms_since(t1);
      }
    }
    // Verify the long-lived subscriber still decrypts.
    const Gelt m = sp.group.random_element(rng);
    const Ciphertext ct = encrypt(sp, mgr.public_key(), m, rng);
    const bool ok = receiver.decrypt(ct) == m;
    if (p < 5 || (p + 1) % 5 == 0) {
      std::printf("%8zu %12zu %14.2f %14zu %14.2f %12s\n", mgr.period(),
                  total_ops, revoke_ms, reset_bytes, update_ms,
                  ok ? "yes" : "NO!");
    }
    // n = period index; one single-shot sample per period so flatness over
    // the lifetime can be read off the records.
    report.add({"period_revokes", p, v, ms_to_ns(revoke_ms),
                ms_to_ns(revoke_ms), reset_bytes, 1});
    report.add({"period_receiver_update", p, v, ms_to_ns(update_ms),
                ms_to_ns(update_ms), reset_bytes, 1});
    if (!ok) return 1;
  }
  std::printf(
      "\nsurvivor decrypted in every period; total user operations: %zu "
      "(>> v = %zu, impossible for bounded baselines)\n",
      total_ops, v);
  return report.write() ? 0 : 1;
}
