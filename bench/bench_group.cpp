// E8: group-substrate anchor — modular exponentiation and multi-exponentiation
// cost per parameter set. Every other experiment's absolute numbers are
// multiples of these.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "group/fixed_base.h"
#include "rng/chacha_rng.h"

namespace {

using namespace dfky;

const GroupParams& params_for(int idx) {
  static const std::array<GroupParams, 5> kAll = {
      GroupParams::named(ParamId::kTest128), GroupParams::named(ParamId::kSec256),
      GroupParams::named(ParamId::kSec512), GroupParams::named(ParamId::kSec1024),
      GroupParams::named(ParamId::kSec2048)};
  return kAll.at(static_cast<std::size_t>(idx));
}

void BM_ModExp(benchmark::State& state) {
  const Group g(params_for(static_cast<int>(state.range(0))));
  ChaChaRng rng(1);
  const Gelt base = g.random_element(rng);
  const Bigint e = g.random_exponent(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.pow(base, e));
  }
  state.SetLabel(std::to_string(g.p().bit_length()) + "-bit p");
}
BENCHMARK(BM_ModExp)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_MultiExp(benchmark::State& state) {
  const Group g(GroupParams::named(ParamId::kSec512));
  ChaChaRng rng(2);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<Gelt> bases;
  std::vector<Bigint> exps;
  for (std::size_t i = 0; i < k; ++i) {
    bases.push_back(g.random_element(rng));
    exps.push_back(g.random_exponent(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiexp(g, bases, exps));
  }
  state.counters["terms"] = static_cast<double>(k);
}
BENCHMARK(BM_MultiExp)->RangeMultiplier(2)->Range(2, 64)->Unit(benchmark::kMicrosecond);

void BM_NaiveProductOfPows(benchmark::State& state) {
  // The baseline multiexp replaces: k independent pow + mul.
  const Group g(GroupParams::named(ParamId::kSec512));
  ChaChaRng rng(3);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<Gelt> bases;
  std::vector<Bigint> exps;
  for (std::size_t i = 0; i < k; ++i) {
    bases.push_back(g.random_element(rng));
    exps.push_back(g.random_exponent(rng));
  }
  for (auto _ : state) {
    Gelt acc = g.one();
    for (std::size_t i = 0; i < k; ++i) {
      acc = g.mul(acc, g.pow(bases[i], exps[i]));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["terms"] = static_cast<double>(k);
}
BENCHMARK(BM_NaiveProductOfPows)->RangeMultiplier(2)->Range(2, 64)->Unit(benchmark::kMicrosecond);

void BM_EcScalarMul(benchmark::State& state) {
  // The elliptic-curve backend's cost anchor (secp256k1 or P-256).
  const Group g(state.range(0) == 0 ? CurveSpec::secp256k1()
                                    : CurveSpec::p256());
  ChaChaRng rng(5);
  const Gelt base = g.random_element(rng);
  const Bigint e = g.random_exponent(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.pow(base, e));
  }
  state.SetLabel(state.range(0) == 0 ? "secp256k1" : "P-256");
}
BENCHMARK(BM_EcScalarMul)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_FixedBasePow(benchmark::State& state) {
  const Group g(GroupParams::named(ParamId::kSec512));
  ChaChaRng rng(6);
  const Gelt base = g.random_element(rng);
  const FixedBaseTable table(g, base,
                             static_cast<std::size_t>(state.range(0)));
  const Bigint e = g.random_exponent(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.pow(g, e));
  }
  state.counters["window_bits"] = static_cast<double>(state.range(0));
  state.counters["table_elems"] = static_cast<double>(table.table_size());
}
BENCHMARK(BM_FixedBasePow)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_GroupEncode(benchmark::State& state) {
  const Group g(GroupParams::named(ParamId::kSec512));
  ChaChaRng rng(4);
  const Bigint a = rng.uniform_below(g.order());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfky::Gelt(Bigint((a + Bigint(1)) * (a + Bigint(1)) % g.p())));
  }
}
BENCHMARK(BM_GroupEncode);

}  // namespace

int main(int argc, char** argv) {
  using namespace dfky;
  benchjson::Report report("group");
  const std::size_t samples = benchjson::smoke() ? 3 : 25;
  {
    // Modexp anchors: n = bit length of p.
    for (const ParamId id : {ParamId::kTest128, ParamId::kSec512}) {
      const Group g(GroupParams::named(id));
      ChaChaRng rng(1);
      const Gelt base = g.random_element(rng);
      const Bigint e = g.random_exponent(rng);
      report.add_timed("modexp", g.p().bit_length(), 0, g.element_size(),
                       samples,
                       [&] { benchmark::DoNotOptimize(g.pow(base, e)); });
    }
  }
  {
    // Multiexp vs naive product at k = 16 terms (sec512).
    const Group g(GroupParams::named(ParamId::kSec512));
    ChaChaRng rng(2);
    const std::size_t k = 16;
    std::vector<Gelt> bases;
    std::vector<Bigint> exps;
    for (std::size_t i = 0; i < k; ++i) {
      bases.push_back(g.random_element(rng));
      exps.push_back(g.random_exponent(rng));
    }
    report.add_timed("multiexp", k, 0, 0, samples, [&] {
      benchmark::DoNotOptimize(multiexp(g, bases, exps));
    });
    const FixedBaseTable table(g, bases[0], 4);
    report.add_timed("fixedbase_pow", g.p().bit_length(), 0, 0, samples, [&] {
      benchmark::DoNotOptimize(table.pow(g, exps[0]));
    });
  }
  if (!report.write()) return 1;
  if (benchjson::smoke()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
