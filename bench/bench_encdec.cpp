// E2: encryption/decryption cost.
// Paper claim (Sect. 4): Encrypt costs v+3 exponentiations, Decrypt v+2
// (plus O(v^2) scalar work for the Lagrange coefficients) — both independent
// of the number of users n and of the total number of past user operations.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "core/scheme.h"
#include "group/fixed_base.h"
#include "rng/chacha_rng.h"

namespace {

using namespace dfky;

struct Fixture {
  SystemParams sp;
  SetupResult s;
  UserKey sk;
  Gelt m;
  Ciphertext ct;

  Fixture(ParamId id, std::size_t v) : sp(make(id, v)), s(make_setup(sp)) {
    ChaChaRng rng(99);
    sk = issue_user_key(sp, s.msk, Bigint(123456), 0);
    m = sp.group.random_element(rng);
    ct = encrypt(sp, s.pk, m, rng);
  }

  static SystemParams make(ParamId id, std::size_t v) {
    ChaChaRng rng(42);
    return SystemParams::create(Group(GroupParams::named(id)), v, rng);
  }
  static SetupResult make_setup(const SystemParams& params) {
    ChaChaRng rng(43);
    return setup(params, rng);
  }
};

void BM_Encrypt_VSweep(benchmark::State& state) {
  Fixture fx(ParamId::kTest128, static_cast<std::size_t>(state.range(0)));
  ChaChaRng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encrypt(fx.sp, fx.s.pk, fx.m, rng));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
  state.counters["exps"] = static_cast<double>(state.range(0) + 3);
}
BENCHMARK(BM_Encrypt_VSweep)->RangeMultiplier(2)->Range(4, 128)->Unit(benchmark::kMillisecond);

void BM_Decrypt_VSweep(benchmark::State& state) {
  Fixture fx(ParamId::kTest128, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decrypt(fx.sp, fx.sk, fx.ct));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
  state.counters["exps"] = static_cast<double>(state.range(0) + 2);
}
BENCHMARK(BM_Decrypt_VSweep)->RangeMultiplier(2)->Range(4, 128)->Unit(benchmark::kMillisecond);

void BM_Encrypt_512bitReference(benchmark::State& state) {
  Fixture fx(ParamId::kSec512, static_cast<std::size_t>(state.range(0)));
  ChaChaRng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encrypt(fx.sp, fx.s.pk, fx.m, rng));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Encrypt_512bitReference)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Decrypt_512bitReference(benchmark::State& state) {
  Fixture fx(ParamId::kSec512, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decrypt(fx.sp, fx.sk, fx.ct));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Decrypt_512bitReference)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

// Independence from n: decryption after the registry has grown by `n` users
// (the work is identical — the counter documents the claim being tested).
void BM_Decrypt_PopulationIndependence(benchmark::State& state) {
  Fixture fx(ParamId::kTest128, 16);
  // Issue state.range(0) extra keys; decryption must not care.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<UserKey> others;
  for (std::size_t i = 0; i < n; ++i) {
    others.push_back(
        issue_user_key(fx.sp, fx.s.msk, Bigint((long)(100000 + i)), 0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(decrypt(fx.sp, fx.sk, fx.ct));
  }
  state.counters["n_users"] = static_cast<double>(n);
}
BENCHMARK(BM_Decrypt_PopulationIndependence)
    ->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// Ablation: fixed-base precomputation (Encryptor) vs plain encryption —
// same algorithm and output distribution, tables amortized across the
// broadcasts a provider sends under one public key.
void BM_Encrypt_FixedBase(benchmark::State& state) {
  Fixture fx(ParamId::kSec512, static_cast<std::size_t>(state.range(0)));
  const Encryptor enc(fx.sp, fx.s.pk);
  ChaChaRng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encrypt(fx.m, rng));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Encrypt_FixedBase)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

// Elliptic-curve backend reference point (secp256k1, ~128-bit security).
void BM_Encrypt_EcReference(benchmark::State& state) {
  ChaChaRng setup_rng(42);
  const SystemParams sp = SystemParams::create(
      Group(CurveSpec::secp256k1()), static_cast<std::size_t>(state.range(0)),
      setup_rng);
  ChaChaRng rng(18);
  const SetupResult s = setup(sp, rng);
  const Gelt m = sp.group.random_element(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encrypt(sp, s.pk, m, rng));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Encrypt_EcReference)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Decrypt_EcReference(benchmark::State& state) {
  ChaChaRng setup_rng(42);
  const SystemParams sp = SystemParams::create(
      Group(CurveSpec::secp256k1()), static_cast<std::size_t>(state.range(0)),
      setup_rng);
  ChaChaRng rng(19);
  const SetupResult s = setup(sp, rng);
  const UserKey sk = issue_user_key(sp, s.msk, Bigint(123456), 0);
  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = encrypt(sp, s.pk, m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decrypt(sp, sk, ct));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Decrypt_EcReference)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_RepresentationDecrypt(benchmark::State& state) {
  // Pirate-path decryption (used heavily by tracing experiments).
  Fixture fx(ParamId::kTest128, static_cast<std::size_t>(state.range(0)));
  const Representation rep = representation_of(fx.sp, fx.sk, fx.s.pk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decrypt_with_representation(fx.sp, rep, fx.ct));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RepresentationDecrypt)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

// Machine-readable records first (self-sampled; cheap sizes so the smoke
// profile stays fast), then the full google-benchmark suite unless smoking.
int main(int argc, char** argv) {
  using namespace dfky;
  benchjson::Report report("encdec");
  const std::size_t samples = benchjson::smoke() ? 3 : 15;
  for (const std::size_t v : {std::size_t{4}, std::size_t{16}}) {
    Fixture fx(ParamId::kTest128, v);
    ChaChaRng rng(7);
    const std::uint64_t bytes = fx.ct.wire_size(fx.sp.group);
    report.add_timed("encrypt", 0, v, bytes, samples, [&] {
      benchmark::DoNotOptimize(encrypt(fx.sp, fx.s.pk, fx.m, rng));
    });
    report.add_timed("decrypt", 0, v, bytes, samples, [&] {
      benchmark::DoNotOptimize(decrypt(fx.sp, fx.sk, fx.ct));
    });
    const Representation rep = representation_of(fx.sp, fx.sk, fx.s.pk);
    report.add_timed("decrypt_representation", 0, v, bytes, samples, [&] {
      benchmark::DoNotOptimize(decrypt_with_representation(fx.sp, rep, fx.ct));
    });
  }
  if (!report.write()) return 1;
  if (benchjson::smoke()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
