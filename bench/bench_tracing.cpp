// E5: non-black-box tracing cost (paper Sect. 6.3.2, "Time-Complexity").
// Claims: deterministic recovery of all <= m = floor(v/2) traitors;
// O(n^2) with the paper's linear-algebra route (our kBerlekampWelch path),
// improvable "in a more sophisticated manner" (our kSyndrome path:
// O(n v + v^3)).
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "tracing/list_tracing.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

namespace {

using namespace dfky;

struct TraceBench {
  SystemParams sp;
  std::unique_ptr<SecurityManager> mgr;
  Representation delta;

  TraceBench(std::size_t v, std::size_t n, std::size_t coalition)
      : sp(make_params(v)) {
    ChaChaRng rng(7);
    mgr = std::make_unique<SecurityManager>(sp, rng);
    std::vector<UserKey> keys;
    for (std::size_t i = 0; i < n; ++i) {
      const auto u = mgr->add_user(rng);
      if (keys.size() < coalition) keys.push_back(u.key);
    }
    delta = build_pirate_representation(sp, mgr->public_key(), keys, rng);
  }

  static SystemParams make_params(std::size_t v) {
    ChaChaRng rng(42);
    return SystemParams::create(Group(GroupParams::named(ParamId::kTest128)),
                                v, rng);
  }
};

void BM_TraceSyndrome_NSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  TraceBench fx(16, n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace_nonblackbox(
        fx.sp, fx.mgr->public_key(), fx.delta, fx.mgr->users(),
        TraceAlgorithm::kSyndrome));
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["traitors"] = 8;
}
BENCHMARK(BM_TraceSyndrome_NSweep)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_TraceBerlekampWelch_NSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  TraceBench fx(16, n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace_nonblackbox(
        fx.sp, fx.mgr->public_key(), fx.delta, fx.mgr->users(),
        TraceAlgorithm::kBerlekampWelch));
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["traitors"] = 8;
}
BENCHMARK(BM_TraceBerlekampWelch_NSweep)
    ->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_TraceSyndrome_CoalitionSweep(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  TraceBench fx(32, 512, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace_nonblackbox(
        fx.sp, fx.mgr->public_key(), fx.delta, fx.mgr->users(),
        TraceAlgorithm::kSyndrome));
  }
  state.counters["traitors"] = static_cast<double>(m);
}
BENCHMARK(BM_TraceSyndrome_CoalitionSweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_TraceSyndrome_VSweep(benchmark::State& state) {
  const std::size_t v = static_cast<std::size_t>(state.range(0));
  TraceBench fx(v, 256, v / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace_nonblackbox(
        fx.sp, fx.mgr->public_key(), fx.delta, fx.mgr->users(),
        TraceAlgorithm::kSyndrome));
  }
  state.counters["v"] = static_cast<double>(v);
}
BENCHMARK(BM_TraceSyndrome_VSweep)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Beyond-bound tracing (Sudan list decoding): coalition above m = v/2.
// Low-rate regime: v = 20 slots, n = 24 users, coalition 12 > m = 10.
void BM_TraceBeyondBound(benchmark::State& state) {
  const std::size_t coalition = static_cast<std::size_t>(state.range(0));
  TraceBench fx(20, 24, coalition);
  ChaChaRng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace_beyond_bound(
        fx.sp, fx.mgr->public_key(), fx.delta, fx.mgr->users(), coalition,
        rng, &fx.mgr->master_secret()));
  }
  state.counters["traitors"] = static_cast<double>(coalition);
  state.counters["unique_bound_m"] = 10;
}
BENCHMARK(BM_TraceBeyondBound)->Arg(11)->Arg(12)->Arg(13)
    ->Unit(benchmark::kMillisecond);

void BM_PirateConstruction(benchmark::State& state) {
  // How cheap is the adversary's side? (context row)
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  TraceBench fx(16, 64, 1);
  ChaChaRng rng(9);
  std::vector<UserKey> keys;
  SecurityManager& mgr = *fx.mgr;
  for (std::size_t i = 0; i < m; ++i) keys.push_back(mgr.add_user(rng).key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_pirate_representation(fx.sp, mgr.public_key(), keys, rng));
  }
  state.counters["traitors"] = static_cast<double>(m);
}
BENCHMARK(BM_PirateConstruction)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace dfky;
  benchjson::Report report("tracing");
  const bool smoke = benchjson::smoke();
  const std::size_t samples = smoke ? 2 : 10;
  const std::size_t n = smoke ? 32 : 256;
  {
    TraceBench fx(16, n, 8);
    report.add_timed("trace_syndrome", n, 16, 0, samples, [&] {
      benchmark::DoNotOptimize(trace_nonblackbox(
          fx.sp, fx.mgr->public_key(), fx.delta, fx.mgr->users(),
          TraceAlgorithm::kSyndrome));
    });
    report.add_timed("trace_berlekamp_welch", n, 16, 0, samples, [&] {
      benchmark::DoNotOptimize(trace_nonblackbox(
          fx.sp, fx.mgr->public_key(), fx.delta, fx.mgr->users(),
          TraceAlgorithm::kBerlekampWelch));
    });
  }
  if (!report.write()) return 1;
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
