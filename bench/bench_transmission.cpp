// E1: transmission efficiency (paper Sect. 1.1.3, 4).
// Claim: the scheme's ciphertext is O(v) group elements — independent of the
// population size n and of the total number of past user operations —
// whereas the naive per-user ElGamal broadcast is O(n). The bounded
// baseline matches our O(v) ciphertext but buys it with a lifetime
// revocation bound.
//
// Output: measured wire bytes per broadcast (512-bit group), plus
// BENCH_transmission.json (bytes-only records: median_ns = p95_ns = 0).
#include <cstdio>

#include "baselines/bounded_trace_revoke.h"
#include "baselines/naive_elgamal.h"
#include "bench_json.h"
#include "core/scheme.h"
#include "rng/chacha_rng.h"

using namespace dfky;

namespace {

benchjson::Report g_report("transmission");

std::vector<std::size_t> v_sweep() {
  if (benchjson::smoke()) return {4, 8};
  return {4, 8, 16, 32, 64, 128};
}

SystemParams make_params(std::size_t v) {
  ChaChaRng rng(42);
  return SystemParams::create(Group(GroupParams::named(ParamId::kSec512)), v,
                              rng);
}

void scheme_table() {
  std::printf("# E1a: this scheme — ciphertext bytes vs saturation limit v\n");
  std::printf("%8s %14s %20s\n", "v", "bytes", "bytes-per-slot");
  for (std::size_t v : v_sweep()) {
    const SystemParams sp = make_params(v);
    ChaChaRng rng(1);
    const SetupResult s = setup(sp, rng);
    const Gelt m = sp.group.random_element(rng);
    const std::size_t bytes = encrypt(sp, s.pk, m, rng).wire_size(sp.group);
    std::printf("%8zu %14zu %20.1f\n", v, bytes,
                static_cast<double>(bytes) / static_cast<double>(v));
    g_report.add({"ciphertext_bytes", 0, v, 0, 0, bytes, 1});
  }
}

void population_independence_table() {
  std::printf(
      "\n# E1b: this scheme — ciphertext bytes vs population n (v = 16)\n");
  std::printf("%8s %14s\n", "n", "bytes");
  const SystemParams sp = make_params(16);
  ChaChaRng rng(2);
  SetupResult s = setup(sp, rng);
  const Gelt m = sp.group.random_element(rng);
  for (std::size_t n : {64, 256, 1024, 4096, 16384}) {
    // Adding users costs the sender nothing: the same PK encrypts for all.
    const std::size_t bytes = encrypt(sp, s.pk, m, rng).wire_size(sp.group);
    std::printf("%8zu %14zu\n", n, bytes);
    g_report.add({"ciphertext_bytes_vs_n", n, 16, 0, 0, bytes, 1});
  }
}

void naive_table() {
  std::printf("\n# E1c: naive per-user ElGamal — broadcast bytes vs n\n");
  std::printf("%8s %14s\n", "n", "bytes");
  const Group g(GroupParams::named(ParamId::kSec512));
  ChaChaRng rng(3);
  NaiveElGamalBroadcast sys(g);
  std::size_t added = 0;
  const std::vector<std::size_t> ns =
      benchjson::smoke() ? std::vector<std::size_t>{16, 64}
                         : std::vector<std::size_t>{16, 64, 256, 1024};
  for (std::size_t n : ns) {
    while (added < n) {
      sys.add_user(rng);
      ++added;
    }
    const auto b = sys.encrypt(g.random_element(rng), rng);
    std::printf("%8zu %14zu\n", n, b.wire_size(g));
    g_report.add({"naive_elgamal_bytes", n, 0, 0, 0, b.wire_size(g), 1});
  }
}

void bounded_table() {
  std::printf(
      "\n# E1d: bounded NP/TT-style baseline — ciphertext bytes vs v\n"
      "#      (same O(v) shape as ours, but only v lifetime revocations)\n");
  std::printf("%8s %14s\n", "v", "bytes");
  for (std::size_t v : {4, 8, 16, 32}) {
    const SystemParams sp = make_params(v);
    ChaChaRng rng(4);
    BoundedTraceRevoke sys(sp, OverflowPolicy::kRefuse, rng);
    const Gelt m = sp.group.random_element(rng);
    const std::size_t bytes = sys.wire_size(sys.encrypt(m, rng));
    std::printf("%8zu %14zu\n", v, bytes);
    g_report.add({"bounded_baseline_bytes", 0, v, 0, 0, bytes, 1});
  }
}

void crossover_table() {
  std::printf(
      "\n# E1e: crossover — ours (v = 16) vs naive, bytes as n grows\n");
  std::printf("%8s %14s %14s %10s\n", "n", "ours", "naive", "winner");
  const SystemParams sp = make_params(16);
  ChaChaRng rng(5);
  const SetupResult s = setup(sp, rng);
  const Gelt m = sp.group.random_element(rng);
  const std::size_t ours = encrypt(sp, s.pk, m, rng).wire_size(sp.group);
  const Group& g = sp.group;
  NaiveElGamalBroadcast naive(g);
  std::size_t added = 0;
  for (std::size_t n : {4, 8, 16, 32, 64, 128}) {
    while (added < n) {
      naive.add_user(rng);
      ++added;
    }
    const std::size_t nb = naive.encrypt(m, rng).wire_size(g);
    std::printf("%8zu %14zu %14zu %10s\n", n, ours, nb,
                ours <= nb ? "ours" : "naive");
  }
}

void ec_table() {
  std::printf(
      "\n# E1f: elliptic-curve backend (secp256k1, ~128-bit security) —\n"
      "#      ciphertext bytes vs v; compare with E1a's 512-bit Z_p* rows\n");
  std::printf("%8s %14s %14s\n", "v", "ec-bytes", "zp512-bytes");
  for (std::size_t v : {4, 8, 16, 32}) {
    ChaChaRng rng(7);
    const SystemParams ec_sp =
        SystemParams::create(Group(CurveSpec::secp256k1()), v, rng);
    const SetupResult ec_s = setup(ec_sp, rng);
    const Gelt ec_m = ec_sp.group.random_element(rng);
    const std::size_t ec_bytes =
        encrypt(ec_sp, ec_s.pk, ec_m, rng).wire_size(ec_sp.group);

    const SystemParams zp = make_params(v);
    const SetupResult zp_s = setup(zp, rng);
    const Gelt zp_m = zp.group.random_element(rng);
    const std::size_t zp_bytes =
        encrypt(zp, zp_s.pk, zp_m, rng).wire_size(zp.group);
    std::printf("%8zu %14zu %14zu\n", v, ec_bytes, zp_bytes);
    g_report.add({"ciphertext_bytes_ec", 0, v, 0, 0, ec_bytes, 1});
  }
}

}  // namespace

int main() {
  std::printf("=== E1: transmission efficiency (512-bit group) ===\n\n");
  scheme_table();
  population_independence_table();
  naive_table();
  if (!benchjson::smoke()) {
    bounded_table();
    crossover_table();
    ec_table();
  }
  return g_report.write() ? 0 : 1;
}
