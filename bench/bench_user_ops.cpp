// E3: user-management operations (paper Sect. 2.1 scalability objectives).
// Claims: Add-user touches no existing user and costs O(v) scalar work
// (two polynomial evaluations); Remove-user costs O(1) exponentiations and
// touches only the public key; both are independent of the population n.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "core/manager.h"
#include "rng/chacha_rng.h"

namespace {

using namespace dfky;

SystemParams make_params(std::size_t v) {
  ChaChaRng rng(42);
  return SystemParams::create(Group(GroupParams::named(ParamId::kTest128)), v,
                              rng);
}

void BM_AddUser_PopulationSweep(benchmark::State& state) {
  const std::size_t n0 = static_cast<std::size_t>(state.range(0));
  ChaChaRng rng(11);
  SecurityManager mgr(make_params(8), rng);
  for (std::size_t i = 0; i < n0; ++i) mgr.add_user(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.add_user(rng));
  }
  state.counters["n_existing"] = static_cast<double>(n0);
}
BENCHMARK(BM_AddUser_PopulationSweep)
    ->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_AddUser_VSweep(benchmark::State& state) {
  ChaChaRng rng(12);
  SecurityManager mgr(make_params(static_cast<std::size_t>(state.range(0))),
                      rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.add_user(rng));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AddUser_VSweep)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_RemoveUser_PopulationSweep(benchmark::State& state) {
  // Each iteration removes one previously-added user; the period rolls
  // automatically when saturated, so we use a large v to isolate the
  // Remove-user edit itself and pause timing around the occasional reset.
  const std::size_t n0 = static_cast<std::size_t>(state.range(0));
  ChaChaRng rng(13);
  SecurityManager mgr(make_params(64), rng);
  std::vector<std::uint64_t> pool;
  for (std::size_t i = 0; i < n0; ++i) pool.push_back(mgr.add_user(rng).id);
  std::size_t next = 0;
  for (auto _ : state) {
    if (next >= pool.size() ||
        mgr.saturation_level() == mgr.saturation_limit()) {
      state.PauseTiming();
      if (mgr.saturation_level() == mgr.saturation_limit()) {
        mgr.new_period(rng);
      }
      while (next >= pool.size()) pool.push_back(mgr.add_user(rng).id);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(mgr.remove_user(pool[next++], rng));
  }
  state.counters["n_existing"] = static_cast<double>(n0);
}
BENCHMARK(BM_RemoveUser_PopulationSweep)
    ->Arg(128)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMicrosecond);

void BM_Setup_VSweep(benchmark::State& state) {
  const SystemParams sp = make_params(static_cast<std::size_t>(state.range(0)));
  ChaChaRng rng(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup(sp, rng));
  }
  state.counters["v"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Setup_VSweep)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace dfky;
  benchjson::Report report("user_ops");
  const std::size_t samples = benchjson::smoke() ? 3 : 25;
  for (const std::size_t v : {std::size_t{8}, std::size_t{32}}) {
    ChaChaRng rng(11);
    SecurityManager mgr(make_params(v), rng);
    report.add_timed("add_user", 0, v, 0, samples, [&] {
      benchmark::DoNotOptimize(mgr.add_user(rng));
    });
    // One removal per sample; roll the period manually when saturated so
    // the timing isolates the Remove-user edit itself.
    std::vector<std::uint64_t> pool;
    for (std::size_t i = 0; i < samples + 1; ++i) {
      pool.push_back(mgr.add_user(rng).id);
    }
    std::size_t next = 0;
    report.add_timed("remove_user", 0, v, 0, samples, [&] {
      if (mgr.saturation_level() == mgr.saturation_limit()) {
        mgr.new_period(rng);
      }
      benchmark::DoNotOptimize(mgr.remove_user(pool[next++], rng));
    });
  }
  if (!report.write()) return 1;
  if (benchjson::smoke()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
