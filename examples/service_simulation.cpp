// Service simulation: a year in the life of a subscription service.
//
// Monte-Carlo churn: every "week" some users join, some cancel (revoked),
// and occasionally a coalition of active subscribers leaks a pirate decoder
// to the black market. The manager traces each seized decoder, revokes the
// traitors, and the simulation verifies three invariants continuously:
//   (1) every active subscriber decrypts every broadcast;
//   (2) no revoked key (cancelled or traitor) ever decrypts again;
//   (3) tracing always names exactly the leaking coalition.
//
// Build & run:  ./build/examples/service_simulation [weeks] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/manager.h"
#include "rng/chacha_rng.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

using namespace dfky;

namespace {

struct Subscriber {
  UserKey key;
  bool active = true;
};

struct Stats {
  std::size_t joins = 0;
  std::size_t cancels = 0;
  std::size_t broadcasts = 0;
  std::size_t decrypt_checks = 0;
  std::size_t pirates_seized = 0;
  std::size_t traitors_convicted = 0;
  std::size_t periods = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int weeks = argc > 1 ? std::atoi(argv[1]) : 52;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  ChaChaRng rng(seed);

  const std::size_t v = 6;  // m = 3
  const SystemParams sp = SystemParams::create(
      Group(GroupParams::named(ParamId::kTest128)), v, rng);
  SecurityManager mgr(sp, rng, ResetMode::kHybrid);
  std::map<std::uint64_t, Subscriber> subs;
  Stats st;

  auto apply_bundle = [&](const SignedResetBundle& bundle) {
    ++st.periods;
    for (auto& [id, sub] : subs) {
      if (!sub.active) continue;
      const auto [d, e] = open_reset_message(sp, sub.key, bundle.reset);
      const Zq& zq = sp.group.zq();
      sub.key.ax = zq.add(sub.key.ax, d.eval(sub.key.x));
      sub.key.bx = zq.add(sub.key.bx, e.eval(sub.key.x));
      sub.key.period = bundle.reset.new_period;
    }
  };
  auto revoke = [&](std::uint64_t id) {
    const auto bundle = mgr.remove_user(id, rng);
    subs.at(id).active = false;
    if (bundle) apply_bundle(*bundle);
  };

  // Seed population.
  for (int i = 0; i < 10; ++i) {
    const auto u = mgr.add_user(rng);
    subs.emplace(u.id, Subscriber{u.key, true});
    ++st.joins;
  }

  for (int week = 1; week <= weeks; ++week) {
    // Joins: 0..2 new subscribers.
    for (std::uint64_t j = rng.u64() % 3; j > 0; --j) {
      const auto u = mgr.add_user(rng);
      subs.emplace(u.id, Subscriber{u.key, true});
      ++st.joins;
    }
    // Cancellations: each active subscriber cancels w.p. ~1/16.
    for (auto& [id, sub] : subs) {
      if (sub.active && (rng.u64() & 15) == 0 && subs.size() > 4) {
        revoke(id);
        ++st.cancels;
      }
    }
    // Piracy event roughly every 8 weeks: a coalition of up to m active
    // subscribers leaks a decoder.
    if (rng.u64() % 8 == 0) {
      std::vector<std::uint64_t> coalition_ids;
      std::vector<UserKey> coalition_keys;
      for (const auto& [id, sub] : subs) {
        if (sub.active && coalition_ids.size() < sp.max_collusion() &&
            (rng.u64() & 1)) {
          coalition_ids.push_back(id);
          coalition_keys.push_back(sub.key);
        }
      }
      if (!coalition_keys.empty()) {
        const Representation pirate = build_pirate_representation(
            sp, mgr.public_key(), coalition_keys, rng);
        const TraceResult traced =
            trace_nonblackbox(sp, mgr.public_key(), pirate, mgr.users());
        ++st.pirates_seized;
        // Invariant (3): exactly the coalition is convicted.
        auto ids = traced.ids();
        std::sort(ids.begin(), ids.end());
        std::sort(coalition_ids.begin(), coalition_ids.end());
        if (ids != coalition_ids) {
          std::printf("week %d: TRACING MISMATCH\n", week);
          return 1;
        }
        for (std::uint64_t id : ids) {
          revoke(id);
          ++st.traitors_convicted;
        }
      }
    }
    // Weekly broadcast; verify invariants (1) and (2).
    const Gelt m = sp.group.random_element(rng);
    const Ciphertext ct = encrypt(sp, mgr.public_key(), m, rng);
    ++st.broadcasts;
    for (const auto& [id, sub] : subs) {
      ++st.decrypt_checks;
      bool ok;
      try {
        UserKey k = sub.key;
        k.period = ct.period;  // inactive keys are stale; force the attempt
        ok = decrypt(sp, k, ct) == m;
      } catch (const Error&) {
        ok = false;
      }
      if (sub.active && !ok) {
        std::printf("week %d: ACTIVE SUBSCRIBER #%llu LOCKED OUT\n", week,
                    static_cast<unsigned long long>(id));
        return 1;
      }
      if (!sub.active && ok) {
        std::printf("week %d: REVOKED KEY #%llu STILL DECRYPTS\n", week,
                    static_cast<unsigned long long>(id));
        return 1;
      }
    }
  }

  std::size_t active = 0;
  for (const auto& [id, sub] : subs) {
    if (sub.active) ++active;
  }
  std::printf("simulated %d weeks (seed %llu) without invariant violations\n",
              weeks, static_cast<unsigned long long>(seed));
  std::printf("  joins:              %zu\n", st.joins);
  std::printf("  cancellations:      %zu\n", st.cancels);
  std::printf("  pirates seized:     %zu\n", st.pirates_seized);
  std::printf("  traitors convicted: %zu\n", st.traitors_convicted);
  std::printf("  period changes:     %zu (v = %zu)\n", st.periods, v);
  std::printf("  broadcasts:         %zu (%zu decrypt checks)\n",
              st.broadcasts, st.decrypt_checks);
  std::printf("  final population:   %zu active / %zu total\n", active,
              subs.size());
  return 0;
}
