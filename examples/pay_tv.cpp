// Pay-TV: the paper's motivating scenario (Sect. 1.1) end to end.
//
// Several independent content providers broadcast over one shared
// infrastructure (server-side scalability); subscribers come and go
// (client-side scalability); all messages flow as serialized bytes over an
// in-process broadcast bus, and the example prints the real wire costs.
//
// Build & run:  ./build/examples/pay_tv
#include <cstdio>
#include <memory>
#include <string>

#include "broadcast/provider.h"
#include "core/manager.h"
#include "rng/system_rng.h"

using namespace dfky;

namespace {

Bytes str(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace

int main() {
  SystemRng rng;
  const SystemParams sp =
      SystemParams::create(Group(GroupParams::named(ParamId::kSec512)),
                           /*v=*/4, rng);
  BroadcastBus bus;
  SecurityManager manager(sp, rng, ResetMode::kHybrid);

  // Three channels share the infrastructure. None holds any secret: they
  // learn the public key from the bus like everyone else.
  ContentProvider sports("SportsOne", sp, manager.public_key(), bus);
  ContentProvider movies("MovieMax", sp, manager.public_key(), bus);
  ContentProvider news("NewsNow", sp, manager.public_key(), bus);

  // Subscribers join over time.
  std::vector<std::unique_ptr<SubscriberClient>> subscribers;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const auto u = manager.add_user(rng);
    ids.push_back(u.id);
    subscribers.push_back(std::make_unique<SubscriberClient>(
        sp, u.key, manager.verification_key(), bus));
  }
  std::printf("6 subscribers joined; period %llu\n",
              static_cast<unsigned long long>(manager.period()));

  sports.broadcast(str("goal! 1-0"), rng);
  movies.broadcast(str("tonight: PODC the movie"), rng);

  // Subscriber #2 stops paying: revoke. Only the public key changes; the
  // manager republishes it so providers stay current.
  manager.remove_user(ids[2], rng);
  announce_public_key(bus, sp.group, manager.public_key());
  news.broadcast(str("headline: traitor revoked"), rng);

  // Churn until the saturation limit forces a period change; the signed
  // reset bundle rides the same bus and every active subscriber follows.
  for (int i = 0; i < 4; ++i) {
    const auto churn = manager.add_user(rng);
    const auto bundle = manager.remove_user(churn.id, rng);
    if (bundle) {
      announce_reset(bus, sp.group, *bundle);
      std::printf("period change -> %llu (reset bundle: %zu bytes)\n",
                  static_cast<unsigned long long>(manager.period()),
                  bundle->wire_size(sp.group));
    }
    announce_public_key(bus, sp.group, manager.public_key());
  }
  sports.broadcast(str("full time"), rng);

  // Scorecard.
  std::printf("\n%12s %10s %10s %14s %14s\n", "subscriber", "period",
              "received", "missed", "failed-resets");
  for (std::size_t i = 0; i < subscribers.size(); ++i) {
    const auto& s = *subscribers[i];
    std::printf("%12zu %10llu %10zu %14zu %14zu%s\n", i,
                static_cast<unsigned long long>(s.period()),
                s.received_content().size(), s.missed_broadcasts(),
                s.failed_resets(), i == 2 ? "   <- revoked" : "");
  }
  std::printf(
      "\nbus traffic: %llu messages, %llu bytes total "
      "(content %llu, key updates %llu, period changes %llu)\n",
      static_cast<unsigned long long>(bus.messages_sent()),
      static_cast<unsigned long long>(bus.bytes_sent()),
      static_cast<unsigned long long>(bus.bytes_sent(MsgType::kContent)),
      static_cast<unsigned long long>(
          bus.bytes_sent(MsgType::kPublicKeyUpdate)),
      static_cast<unsigned long long>(
          bus.bytes_sent(MsgType::kChangePeriod)));
  return 0;
}
