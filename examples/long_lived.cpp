// Long-lived deployment: unlimited revocations over many periods, and the
// expiry property that distinguishes this scheme from bounded baselines.
//
// A pirate subscribes, gets caught and revoked in period 0, then keeps
// eavesdropping every broadcast and every reset message for 20 periods,
// trying to revive its key after each one. It never succeeds — while a
// loyal day-one subscriber sails through every period change.
//
// Build & run:  ./build/examples/long_lived
#include <cstdio>

#include "core/manager.h"
#include "core/receiver.h"
#include "rng/system_rng.h"

using namespace dfky;

int main() {
  SystemRng rng;
  const std::size_t v = 4;
  const SystemParams sp = SystemParams::create(
      Group(GroupParams::named(ParamId::kSec256)), v, rng);
  SecurityManager manager(sp, rng, ResetMode::kHybrid);

  const auto loyal = manager.add_user(rng);
  Receiver loyal_rx(sp, loyal.key, manager.verification_key());

  const auto pirate = manager.add_user(rng);
  UserKey pirate_key = pirate.key;  // the pirate hoards its key material

  manager.remove_user(pirate.id, rng);
  std::printf("pirate revoked in period 0\n\n");
  std::printf("%8s %12s %12s %16s\n", "period", "loyal-ok", "pirate-ok",
              "total-revoked");

  std::size_t total_revoked = 1;
  for (int period = 0; period < 20; ++period) {
    // Fill the period with churn (v + 1 forced removals roll the period).
    for (std::size_t i = 0; i <= v; ++i) {
      const auto churn = manager.add_user(rng);
      const auto bundle = manager.remove_user(churn.id, rng);
      ++total_revoked;
      if (bundle) {
        loyal_rx.apply_reset(*bundle);
        // The pirate eavesdrops the reset and tries to follow it too.
        try {
          const auto [d, e] =
              open_reset_message(sp, pirate_key, bundle->reset);
          const Zq& zq = sp.group.zq();
          pirate_key.ax = zq.add(pirate_key.ax, d.eval(pirate_key.x));
          pirate_key.bx = zq.add(pirate_key.bx, e.eval(pirate_key.x));
          pirate_key.period = bundle->reset.new_period;
          std::printf("!! pirate followed a reset — this must not happen\n");
        } catch (const Error&) {
          // Expected: the reset is sealed against revoked keys.
        }
      }
    }
    // Broadcast a message; check both parties.
    const Gelt m = sp.group.random_element(rng);
    const Ciphertext ct = encrypt(sp, manager.public_key(), m, rng);
    const bool loyal_ok = loyal_rx.decrypt(ct) == m;
    bool pirate_ok = false;
    try {
      UserKey forced = pirate_key;
      forced.period = ct.period;  // pirate ignores period discipline
      pirate_ok = decrypt(sp, forced, ct) == m;
    } catch (const Error&) {
      pirate_ok = false;
    }
    std::printf("%8llu %12s %12s %16zu\n",
                static_cast<unsigned long long>(manager.period()),
                loyal_ok ? "yes" : "NO!", pirate_ok ? "YES!" : "no",
                total_revoked);
    if (!loyal_ok || pirate_ok) return 1;
  }
  std::printf(
      "\n%zu total revocations with v = %zu — a bounded-revocation scheme "
      "would have died (or revived the pirate) after %zu.\n",
      total_revoked, v, v);
  return 0;
}
