// Piracy bust: a traitor coalition builds a pirate decoder; the security
// manager traces it twice — non-black-box (key extracted, Sect. 6.3) and
// black-box confirmation (decoder only queried, Sect. 6.2) — then revokes
// the traitors and shows the decoder is dead.
//
// Build & run:  ./build/examples/piracy_bust
#include <cstdio>

#include "core/manager.h"
#include "rng/system_rng.h"
#include "tracing/blackbox.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

using namespace dfky;

int main() {
  SystemRng rng;
  const SystemParams sp =
      SystemParams::create(Group(GroupParams::named(ParamId::kSec256)),
                           /*v=*/6, rng);  // m = 3
  SecurityManager manager(sp, rng);

  // A population of 10; users 1, 4 and 7 are the traitors.
  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 10; ++i) users.push_back(manager.add_user(rng));
  const std::vector<std::size_t> coalition = {1, 4, 7};
  std::printf("population: 10 users; secret coalition: {1, 4, 7}\n");

  // The coalition mixes its keys into one pirate representation and ships a
  // decoder on the black market.
  std::vector<UserKey> keys;
  for (std::size_t i : coalition) keys.push_back(users[i].key);
  RepresentationDecoder decoder(
      sp, build_pirate_representation(sp, manager.public_key(), keys, rng));

  // The decoder works:
  const Gelt m = sp.group.random_element(rng);
  std::printf("pirate decoder works: %s\n",
              decoder.decrypt(encrypt(sp, manager.public_key(), m, rng)) == m
                  ? "yes"
                  : "no");

  // --- Bust 1: non-black-box. The decoder is seized and its key extracted
  // (Assumption 3); deterministic tracing names ALL contributors.
  const TraceResult traced = trace_nonblackbox(
      sp, manager.public_key(), decoder.extract_representation(),
      manager.users());
  std::printf("non-black-box trace:");
  for (const auto& t : traced.traitors) {
    std::printf(" user#%llu", static_cast<unsigned long long>(t.id));
  }
  std::printf("\n");

  // --- Bust 2: black-box confirmation. Suppose partial intelligence gave
  // the suspect set {1, 4, 7}; the tracer only queries the decoder.
  std::vector<UserRecord> suspects;
  for (std::size_t i : coalition) {
    suspects.push_back(manager.users()[users[i].id]);
  }
  BbcOptions opt;
  opt.epsilon = 0.9;
  opt.samples_override = 50;
  const BbcResult bbc =
      black_box_confirm(sp, manager.master_secret(), manager.public_key(),
                        suspects, decoder, opt, rng);
  if (bbc.accused) {
    std::printf(
        "black-box confirmation accused user#%llu after %zu decoder "
        "queries\n",
        static_cast<unsigned long long>(*bbc.accused), bbc.queries);
  } else {
    std::printf("black-box confirmation output '?' (unexpected here)\n");
  }

  // --- Sentence: revoke every traced traitor. The decoder dies instantly,
  // honest users are unaffected.
  for (const auto& t : traced.traitors) manager.remove_user(t.id, rng);
  const Gelt m2 = sp.group.random_element(rng);
  const Ciphertext ct2 = encrypt(sp, manager.public_key(), m2, rng);
  std::printf("after revocation: pirate decoder works: %s\n",
              decoder.decrypt(ct2) == m2 ? "STILL (bug!)" : "no (dead)");
  std::printf("honest user 0 decrypts: %s\n",
              decrypt(sp, users[0].key, ct2) == m2 ? "ok" : "FAIL");
  return 0;
}
