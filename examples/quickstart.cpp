// Quickstart: the full API surface in one short program.
//
//   setup -> add users -> encrypt/decrypt -> revoke -> period change ->
//   trace a pirate.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/manager.h"
#include "core/receiver.h"
#include "rng/system_rng.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

using namespace dfky;

int main() {
  SystemRng rng;

  // 1. Setup: a 512-bit safe-prime group, saturation limit v = 8
  //    (up to 8 revocations per period, traitor coalitions up to m = 4).
  const SystemParams sp =
      SystemParams::create(Group(GroupParams::named(ParamId::kSec512)),
                           /*v=*/8, rng);
  SecurityManager manager(sp, rng);
  std::printf("system ready: v = %zu, m = %zu, period %llu\n", sp.v,
              sp.max_collusion(),
              static_cast<unsigned long long>(manager.period()));

  // 2. Subscribe three users. Keys are independent of everyone else's.
  const auto alice = manager.add_user(rng);
  const auto bob = manager.add_user(rng);
  const auto carol = manager.add_user(rng);
  Receiver alice_rx(sp, alice.key, manager.verification_key());
  Receiver bob_rx(sp, bob.key, manager.verification_key());

  // 3. Anyone holding the public key can broadcast.
  const Gelt message = sp.group.random_element(rng);
  const Ciphertext ct = encrypt(sp, manager.public_key(), message, rng);
  std::printf("alice decrypts: %s\n",
              alice_rx.decrypt(ct) == message ? "ok" : "FAIL");
  std::printf("bob decrypts:   %s\n",
              bob_rx.decrypt(ct) == message ? "ok" : "FAIL");

  // 4. Revoke carol: only the public key changes.
  manager.remove_user(carol.id, rng);
  const Ciphertext ct2 =
      encrypt(sp, manager.public_key(), message, rng);
  try {
    decrypt(sp, carol.key, ct2);
    std::printf("carol decrypts: FAIL (should be barred)\n");
  } catch (const Error&) {
    std::printf("carol decrypts: barred, as expected\n");
  }
  std::printf("alice decrypts: %s\n",
              alice_rx.decrypt(ct2) == message ? "ok" : "FAIL");

  // 5. Proactive period change: receivers update keys from the signed
  //    broadcast; carol (revoked) cannot follow and is expired for good.
  const SignedResetBundle bundle = manager.new_period(rng);
  alice_rx.apply_reset(bundle);
  bob_rx.apply_reset(bundle);
  const Ciphertext ct3 = encrypt(sp, manager.public_key(), message, rng);
  std::printf("after New-period: alice %s, bob %s\n",
              alice_rx.decrypt(ct3) == message ? "ok" : "FAIL",
              bob_rx.decrypt(ct3) == message ? "ok" : "FAIL");

  // 6. Alice and Bob collude: they build a pirate decoder from a convex
  //    combination of their keys. Non-black-box tracing names them both.
  const std::vector<UserKey> coalition = {alice_rx.key(), bob_rx.key()};
  const Representation pirate_key = build_pirate_representation(
      sp, manager.public_key(), coalition, rng);
  const TraceResult traced = trace_nonblackbox(
      sp, manager.public_key(), pirate_key, manager.users());
  std::printf("traced traitors:");
  for (const auto& t : traced.traitors) {
    std::printf(" user#%llu", static_cast<unsigned long long>(t.id));
  }
  std::printf("  (expected: user#%llu user#%llu)\n",
              static_cast<unsigned long long>(alice.id),
              static_cast<unsigned long long>(bob.id));
  return 0;
}
