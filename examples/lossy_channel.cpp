// Lossy channel walkthrough: the DFKY broadcast running over a channel that
// drops, duplicates, corrupts and reorders messages — including a dropped
// New-period bundle — and the catch-up recovery protocol bringing every
// legitimate subscriber back while a revoked one stays expired.
//
// Build & run:  ./build/examples/lossy_channel
#include <cstdio>

#include "broadcast/faulty_bus.h"
#include "broadcast/recovery.h"
#include "core/manager.h"
#include "rng/chacha_rng.h"

using namespace dfky;

namespace {

const char* state_name(ReceiverState s) {
  switch (s) {
    case ReceiverState::kCurrent:
      return "current";
    case ReceiverState::kStale:
      return "STALE";
    case ReceiverState::kUnrecoverable:
      return "UNRECOVERABLE";
  }
  return "?";
}

Bytes str(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace

int main() {
  // Deterministic: the same seeds reproduce the same faults and the same
  // recovery, message for message.
  ChaChaRng rng(2024);
  const SystemParams sp = SystemParams::create(
      Group(GroupParams::named(ParamId::kTest128)), /*v=*/3, rng);

  // 20% drop / 10% duplicate / 5% corruption, the acceptance mix.
  FaultyBus bus(FaultPlan{.seed = 7,
                          .drop_prob = 0.20,
                          .duplicate_prob = 0.10,
                          .corrupt_prob = 0.05});
  SecurityManager manager(sp, rng);
  ChaChaRng responder_rng(2025);
  CatchUpResponder responder(manager, bus, responder_rng);

  const auto alice = manager.add_user(rng);
  const auto mallory = manager.add_user(rng);
  SubscriberClient alice_sub(sp, alice.key, manager.verification_key(), bus);
  RecoveryClient alice_rec(alice_sub, bus, RecoveryPolicy{.nonce = 1});
  SubscriberClient mallory_sub(sp, mallory.key, manager.verification_key(),
                               bus);
  RecoveryClient mallory_rec(mallory_sub, bus, RecoveryPolicy{.nonce = 2});
  ContentProvider tv("tv", sp, manager.public_key(), bus);

  std::printf("revoking mallory...\n");
  manager.remove_user(mallory.id, rng);
  announce_public_key(bus, sp.group, manager.public_key());

  // Guarantee alice misses at least one New-period bundle outright, on top
  // of whatever the probabilistic faults eat.
  bus.drop_next_change_periods(1);

  for (int t = 0; t < 5; ++t) {
    announce_reset(bus, sp.group, manager.new_period(rng));
    announce_public_key(bus, sp.group, manager.public_key());
    for (int c = 0; c < 4; ++c) tv.broadcast(str("episode"), rng);
    std::printf(
        "period %llu | alice: %-7s period=%llu got=%zu | "
        "mallory: %-7s period=%llu got=%zu\n",
        (unsigned long long)manager.period(), state_name(alice_sub.state()),
        (unsigned long long)alice_sub.period(),
        alice_sub.received_content().size(), state_name(mallory_sub.state()),
        (unsigned long long)mallory_sub.period(),
        mallory_sub.received_content().size());
  }

  std::printf("\nchannel heals; one more broadcast...\n");
  bus.heal();
  announce_public_key(bus, sp.group, manager.public_key());
  tv.broadcast(str("season finale"), rng);
  tv.broadcast(str("season finale"), rng);  // retry after any catch-up round

  const auto& counters = bus.fault_counters();
  std::printf(
      "\nchannel: %llu published, %llu dropped (%llu targeted), "
      "%llu duplicated, %llu corrupted\n",
      (unsigned long long)counters.published,
      (unsigned long long)counters.dropped,
      (unsigned long long)counters.targeted_drops,
      (unsigned long long)counters.duplicated,
      (unsigned long long)counters.corrupted);
  std::printf("recovery: alice sent %zu catch-up requests, replayed %zu "
              "signed bundles\n",
              alice_rec.requests_sent(), alice_rec.bundles_replayed());

  const bool alice_ok =
      alice_sub.state() == ReceiverState::kCurrent &&
      alice_sub.period() == manager.period() &&
      !alice_sub.received_content().empty() &&
      alice_sub.received_content().back() == str("season finale");
  const bool mallory_out = mallory_sub.received_content().empty();
  std::printf("alice:   %s at period %llu, saw the finale: %s\n",
              state_name(alice_sub.state()),
              (unsigned long long)alice_sub.period(),
              alice_ok ? "yes" : "NO");
  std::printf("mallory: period %llu, content received: %zu (expired, the "
              "archive answered her requests but the bundles do not open)\n",
              (unsigned long long)mallory_sub.period(),
              mallory_sub.received_content().size());
  return alice_ok && mallory_out ? 0 : 1;
}
