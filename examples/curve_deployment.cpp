// Elliptic-curve deployment: the paper's alternative group instantiation
// (Sect. 3) end to end on secp256k1 — ~128-bit security with ciphertexts a
// fraction of the safe-prime sizes, hybrid period changes (the paper's
// Remark), persistence across a simulated manager restart, and tracing.
//
// Build & run:  ./build/examples/curve_deployment
#include <cstdio>

#include "core/manager.h"
#include "core/receiver.h"
#include "rng/system_rng.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

using namespace dfky;

int main() {
  SystemRng rng;
  const std::size_t v = 8;
  const SystemParams sp =
      SystemParams::create(Group(CurveSpec::secp256k1()), v, rng);
  // EC groups have no full-range invertible message encoding, so period
  // changes use the paper's hybrid Remark (the default).
  SecurityManager manager(sp, rng, ResetMode::kHybrid);
  std::printf("secp256k1 deployment: v = %zu, element = %zu bytes "
              "(vs %zu for a 512-bit Z_p* group)\n",
              v, sp.group.element_size(),
              Group(GroupParams::named(ParamId::kSec512)).element_size());

  std::vector<SecurityManager::AddedUser> users;
  for (int i = 0; i < 6; ++i) users.push_back(manager.add_user(rng));
  Receiver loyal(sp, users[0].key, manager.verification_key());

  const Gelt m = sp.group.random_element(rng);
  const Ciphertext ct = encrypt(sp, manager.public_key(), m, rng);
  std::printf("broadcast: %zu bytes on the wire; subscriber decrypts: %s\n",
              ct.wire_size(sp.group), loyal.decrypt(ct) == m ? "ok" : "FAIL");

  // Revoke one subscriber, then roll the period over the hybrid reset.
  manager.remove_user(users[5].id, rng);
  const auto bundle = manager.new_period(rng);
  std::printf("hybrid reset bundle: %zu bytes (O(v), not O(v^2))\n",
              bundle.wire_size(sp.group));
  loyal.apply_reset(bundle);
  const Ciphertext ct2 =
      encrypt(sp, manager.public_key(), m, rng);
  std::printf("after period change, subscriber decrypts: %s\n",
              loyal.decrypt(ct2) == m ? "ok" : "FAIL");

  // Simulate a manager restart from durable state.
  const Bytes state = manager.save_state();
  SecurityManager restored = SecurityManager::restore_state(state);
  std::printf("manager state: %zu bytes; restored manager at period %llu\n",
              state.size(),
              static_cast<unsigned long long>(restored.period()));

  // Trace a two-traitor pirate built after the restart.
  UserKey k1 = users[1].key;
  UserKey k2 = users[3].key;
  {
    // The traitors are legitimate subscribers: update their keys via the
    // reset like everyone else.
    Receiver r1(sp, k1, restored.verification_key());
    Receiver r2(sp, k2, restored.verification_key());
    r1.apply_reset(bundle);
    r2.apply_reset(bundle);
    k1 = r1.key();
    k2 = r2.key();
  }
  const std::vector<UserKey> coalition = {k1, k2};
  const Representation pirate = build_pirate_representation(
      sp, restored.public_key(), coalition, rng);
  const TraceResult traced = trace_nonblackbox(
      sp, restored.public_key(), pirate, restored.users());
  std::printf("traced:");
  for (const auto& t : traced.traitors) {
    std::printf(" user#%llu", static_cast<unsigned long long>(t.id));
  }
  std::printf("  (expected: user#%llu user#%llu)\n",
              static_cast<unsigned long long>(users[1].id),
              static_cast<unsigned long long>(users[3].id));
  return 0;
}
