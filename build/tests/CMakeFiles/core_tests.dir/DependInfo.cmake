
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_backends.cpp" "tests/CMakeFiles/core_tests.dir/test_backends.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_backends.cpp.o.d"
  "/root/repo/tests/test_content.cpp" "tests/CMakeFiles/core_tests.dir/test_content.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_content.cpp.o.d"
  "/root/repo/tests/test_manager.cpp" "tests/CMakeFiles/core_tests.dir/test_manager.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_manager.cpp.o.d"
  "/root/repo/tests/test_persistence.cpp" "tests/CMakeFiles/core_tests.dir/test_persistence.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_persistence.cpp.o.d"
  "/root/repo/tests/test_reset.cpp" "tests/CMakeFiles/core_tests.dir/test_reset.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_reset.cpp.o.d"
  "/root/repo/tests/test_scheme.cpp" "tests/CMakeFiles/core_tests.dir/test_scheme.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfky.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
