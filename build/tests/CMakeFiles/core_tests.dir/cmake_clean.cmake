file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/test_backends.cpp.o"
  "CMakeFiles/core_tests.dir/test_backends.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_content.cpp.o"
  "CMakeFiles/core_tests.dir/test_content.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_manager.cpp.o"
  "CMakeFiles/core_tests.dir/test_manager.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_persistence.cpp.o"
  "CMakeFiles/core_tests.dir/test_persistence.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_reset.cpp.o"
  "CMakeFiles/core_tests.dir/test_reset.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_scheme.cpp.o"
  "CMakeFiles/core_tests.dir/test_scheme.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
