file(REMOVE_RECURSE
  "CMakeFiles/unit_crypto_tests.dir/test_crypto.cpp.o"
  "CMakeFiles/unit_crypto_tests.dir/test_crypto.cpp.o.d"
  "CMakeFiles/unit_crypto_tests.dir/test_ec.cpp.o"
  "CMakeFiles/unit_crypto_tests.dir/test_ec.cpp.o.d"
  "CMakeFiles/unit_crypto_tests.dir/test_fixed_base.cpp.o"
  "CMakeFiles/unit_crypto_tests.dir/test_fixed_base.cpp.o.d"
  "CMakeFiles/unit_crypto_tests.dir/test_group.cpp.o"
  "CMakeFiles/unit_crypto_tests.dir/test_group.cpp.o.d"
  "CMakeFiles/unit_crypto_tests.dir/test_rng.cpp.o"
  "CMakeFiles/unit_crypto_tests.dir/test_rng.cpp.o.d"
  "CMakeFiles/unit_crypto_tests.dir/test_serial.cpp.o"
  "CMakeFiles/unit_crypto_tests.dir/test_serial.cpp.o.d"
  "unit_crypto_tests"
  "unit_crypto_tests.pdb"
  "unit_crypto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_crypto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
