
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/unit_crypto_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/unit_crypto_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_ec.cpp" "tests/CMakeFiles/unit_crypto_tests.dir/test_ec.cpp.o" "gcc" "tests/CMakeFiles/unit_crypto_tests.dir/test_ec.cpp.o.d"
  "/root/repo/tests/test_fixed_base.cpp" "tests/CMakeFiles/unit_crypto_tests.dir/test_fixed_base.cpp.o" "gcc" "tests/CMakeFiles/unit_crypto_tests.dir/test_fixed_base.cpp.o.d"
  "/root/repo/tests/test_group.cpp" "tests/CMakeFiles/unit_crypto_tests.dir/test_group.cpp.o" "gcc" "tests/CMakeFiles/unit_crypto_tests.dir/test_group.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/unit_crypto_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/unit_crypto_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_serial.cpp" "tests/CMakeFiles/unit_crypto_tests.dir/test_serial.cpp.o" "gcc" "tests/CMakeFiles/unit_crypto_tests.dir/test_serial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfky.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
