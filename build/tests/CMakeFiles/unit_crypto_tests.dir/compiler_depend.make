# Empty compiler generated dependencies file for unit_crypto_tests.
# This may be replaced when dependencies are built.
