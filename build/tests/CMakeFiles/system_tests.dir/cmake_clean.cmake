file(REMOVE_RECURSE
  "CMakeFiles/system_tests.dir/test_attacks.cpp.o"
  "CMakeFiles/system_tests.dir/test_attacks.cpp.o.d"
  "CMakeFiles/system_tests.dir/test_baselines.cpp.o"
  "CMakeFiles/system_tests.dir/test_baselines.cpp.o.d"
  "CMakeFiles/system_tests.dir/test_broadcast.cpp.o"
  "CMakeFiles/system_tests.dir/test_broadcast.cpp.o.d"
  "CMakeFiles/system_tests.dir/test_fuzz_decode.cpp.o"
  "CMakeFiles/system_tests.dir/test_fuzz_decode.cpp.o.d"
  "system_tests"
  "system_tests.pdb"
  "system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
