file(REMOVE_RECURSE
  "CMakeFiles/tracing_tests.dir/test_blackbox.cpp.o"
  "CMakeFiles/tracing_tests.dir/test_blackbox.cpp.o.d"
  "CMakeFiles/tracing_tests.dir/test_blackbox_search.cpp.o"
  "CMakeFiles/tracing_tests.dir/test_blackbox_search.cpp.o.d"
  "CMakeFiles/tracing_tests.dir/test_listdecode.cpp.o"
  "CMakeFiles/tracing_tests.dir/test_listdecode.cpp.o.d"
  "CMakeFiles/tracing_tests.dir/test_tracing.cpp.o"
  "CMakeFiles/tracing_tests.dir/test_tracing.cpp.o.d"
  "tracing_tests"
  "tracing_tests.pdb"
  "tracing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
