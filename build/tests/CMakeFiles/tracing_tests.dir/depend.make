# Empty dependencies file for tracing_tests.
# This may be replaced when dependencies are built.
