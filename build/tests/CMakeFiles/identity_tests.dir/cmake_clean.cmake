file(REMOVE_RECURSE
  "CMakeFiles/identity_tests.dir/test_paper_identities.cpp.o"
  "CMakeFiles/identity_tests.dir/test_paper_identities.cpp.o.d"
  "identity_tests"
  "identity_tests.pdb"
  "identity_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identity_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
