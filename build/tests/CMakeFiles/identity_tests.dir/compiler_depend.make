# Empty compiler generated dependencies file for identity_tests.
# This may be replaced when dependencies are built.
