file(REMOVE_RECURSE
  "CMakeFiles/unit_math_tests.dir/test_bigint.cpp.o"
  "CMakeFiles/unit_math_tests.dir/test_bigint.cpp.o.d"
  "CMakeFiles/unit_math_tests.dir/test_codes.cpp.o"
  "CMakeFiles/unit_math_tests.dir/test_codes.cpp.o.d"
  "CMakeFiles/unit_math_tests.dir/test_field.cpp.o"
  "CMakeFiles/unit_math_tests.dir/test_field.cpp.o.d"
  "CMakeFiles/unit_math_tests.dir/test_leap_vector.cpp.o"
  "CMakeFiles/unit_math_tests.dir/test_leap_vector.cpp.o.d"
  "CMakeFiles/unit_math_tests.dir/test_linalg.cpp.o"
  "CMakeFiles/unit_math_tests.dir/test_linalg.cpp.o.d"
  "CMakeFiles/unit_math_tests.dir/test_poly.cpp.o"
  "CMakeFiles/unit_math_tests.dir/test_poly.cpp.o.d"
  "unit_math_tests"
  "unit_math_tests.pdb"
  "unit_math_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_math_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
