
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bigint.cpp" "tests/CMakeFiles/unit_math_tests.dir/test_bigint.cpp.o" "gcc" "tests/CMakeFiles/unit_math_tests.dir/test_bigint.cpp.o.d"
  "/root/repo/tests/test_codes.cpp" "tests/CMakeFiles/unit_math_tests.dir/test_codes.cpp.o" "gcc" "tests/CMakeFiles/unit_math_tests.dir/test_codes.cpp.o.d"
  "/root/repo/tests/test_field.cpp" "tests/CMakeFiles/unit_math_tests.dir/test_field.cpp.o" "gcc" "tests/CMakeFiles/unit_math_tests.dir/test_field.cpp.o.d"
  "/root/repo/tests/test_leap_vector.cpp" "tests/CMakeFiles/unit_math_tests.dir/test_leap_vector.cpp.o" "gcc" "tests/CMakeFiles/unit_math_tests.dir/test_leap_vector.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/unit_math_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/unit_math_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_poly.cpp" "tests/CMakeFiles/unit_math_tests.dir/test_poly.cpp.o" "gcc" "tests/CMakeFiles/unit_math_tests.dir/test_poly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfky.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
