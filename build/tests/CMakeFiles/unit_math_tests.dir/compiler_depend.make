# Empty compiler generated dependencies file for unit_math_tests.
# This may be replaced when dependencies are built.
