# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/unit_math_tests[1]_include.cmake")
include("/root/repo/build/tests/unit_crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/tracing_tests[1]_include.cmake")
include("/root/repo/build/tests/system_tests[1]_include.cmake")
include("/root/repo/build/tests/identity_tests[1]_include.cmake")
add_test(cli_e2e "bash" "/root/repo/tests/cli_e2e.sh" "/root/repo/build/tools/dfky_cli")
set_tests_properties(cli_e2e PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;54;add_test;/root/repo/tests/CMakeLists.txt;0;")
