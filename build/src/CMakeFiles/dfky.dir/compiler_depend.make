# Empty compiler generated dependencies file for dfky.
# This may be replaced when dependencies are built.
