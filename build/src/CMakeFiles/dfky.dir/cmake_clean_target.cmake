file(REMOVE_RECURSE
  "libdfky.a"
)
