
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/revive.cpp" "src/CMakeFiles/dfky.dir/attacks/revive.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/attacks/revive.cpp.o.d"
  "/root/repo/src/attacks/trace_game.cpp" "src/CMakeFiles/dfky.dir/attacks/trace_game.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/attacks/trace_game.cpp.o.d"
  "/root/repo/src/attacks/window_game.cpp" "src/CMakeFiles/dfky.dir/attacks/window_game.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/attacks/window_game.cpp.o.d"
  "/root/repo/src/baselines/bounded_trace_revoke.cpp" "src/CMakeFiles/dfky.dir/baselines/bounded_trace_revoke.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/baselines/bounded_trace_revoke.cpp.o.d"
  "/root/repo/src/baselines/naive_elgamal.cpp" "src/CMakeFiles/dfky.dir/baselines/naive_elgamal.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/baselines/naive_elgamal.cpp.o.d"
  "/root/repo/src/bigint/bigint.cpp" "src/CMakeFiles/dfky.dir/bigint/bigint.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/bigint/bigint.cpp.o.d"
  "/root/repo/src/broadcast/bus.cpp" "src/CMakeFiles/dfky.dir/broadcast/bus.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/broadcast/bus.cpp.o.d"
  "/root/repo/src/broadcast/provider.cpp" "src/CMakeFiles/dfky.dir/broadcast/provider.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/broadcast/provider.cpp.o.d"
  "/root/repo/src/codes/berlekamp_massey.cpp" "src/CMakeFiles/dfky.dir/codes/berlekamp_massey.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/codes/berlekamp_massey.cpp.o.d"
  "/root/repo/src/codes/berlekamp_welch.cpp" "src/CMakeFiles/dfky.dir/codes/berlekamp_welch.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/codes/berlekamp_welch.cpp.o.d"
  "/root/repo/src/codes/grs.cpp" "src/CMakeFiles/dfky.dir/codes/grs.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/codes/grs.cpp.o.d"
  "/root/repo/src/codes/sudan.cpp" "src/CMakeFiles/dfky.dir/codes/sudan.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/codes/sudan.cpp.o.d"
  "/root/repo/src/core/ciphertext.cpp" "src/CMakeFiles/dfky.dir/core/ciphertext.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/core/ciphertext.cpp.o.d"
  "/root/repo/src/core/content.cpp" "src/CMakeFiles/dfky.dir/core/content.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/core/content.cpp.o.d"
  "/root/repo/src/core/keys.cpp" "src/CMakeFiles/dfky.dir/core/keys.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/core/keys.cpp.o.d"
  "/root/repo/src/core/manager.cpp" "src/CMakeFiles/dfky.dir/core/manager.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/core/manager.cpp.o.d"
  "/root/repo/src/core/receiver.cpp" "src/CMakeFiles/dfky.dir/core/receiver.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/core/receiver.cpp.o.d"
  "/root/repo/src/core/reset_message.cpp" "src/CMakeFiles/dfky.dir/core/reset_message.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/core/reset_message.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/CMakeFiles/dfky.dir/core/scheme.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/core/scheme.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/CMakeFiles/dfky.dir/crypto/chacha20.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/crypto/chacha20.cpp.o.d"
  "/root/repo/src/crypto/hkdf.cpp" "src/CMakeFiles/dfky.dir/crypto/hkdf.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/crypto/hkdf.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/dfky.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/CMakeFiles/dfky.dir/crypto/schnorr.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/crypto/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/dfky.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/stream_seal.cpp" "src/CMakeFiles/dfky.dir/crypto/stream_seal.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/crypto/stream_seal.cpp.o.d"
  "/root/repo/src/field/fp.cpp" "src/CMakeFiles/dfky.dir/field/fp.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/field/fp.cpp.o.d"
  "/root/repo/src/field/zq.cpp" "src/CMakeFiles/dfky.dir/field/zq.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/field/zq.cpp.o.d"
  "/root/repo/src/group/curve.cpp" "src/CMakeFiles/dfky.dir/group/curve.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/group/curve.cpp.o.d"
  "/root/repo/src/group/element.cpp" "src/CMakeFiles/dfky.dir/group/element.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/group/element.cpp.o.d"
  "/root/repo/src/group/encoding.cpp" "src/CMakeFiles/dfky.dir/group/encoding.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/group/encoding.cpp.o.d"
  "/root/repo/src/group/fixed_base.cpp" "src/CMakeFiles/dfky.dir/group/fixed_base.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/group/fixed_base.cpp.o.d"
  "/root/repo/src/group/params.cpp" "src/CMakeFiles/dfky.dir/group/params.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/group/params.cpp.o.d"
  "/root/repo/src/linalg/gauss.cpp" "src/CMakeFiles/dfky.dir/linalg/gauss.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/linalg/gauss.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/dfky.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/poly/bivariate.cpp" "src/CMakeFiles/dfky.dir/poly/bivariate.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/poly/bivariate.cpp.o.d"
  "/root/repo/src/poly/lagrange.cpp" "src/CMakeFiles/dfky.dir/poly/lagrange.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/poly/lagrange.cpp.o.d"
  "/root/repo/src/poly/leap_vector.cpp" "src/CMakeFiles/dfky.dir/poly/leap_vector.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/poly/leap_vector.cpp.o.d"
  "/root/repo/src/poly/polynomial.cpp" "src/CMakeFiles/dfky.dir/poly/polynomial.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/poly/polynomial.cpp.o.d"
  "/root/repo/src/poly/roots.cpp" "src/CMakeFiles/dfky.dir/poly/roots.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/poly/roots.cpp.o.d"
  "/root/repo/src/rng/chacha_rng.cpp" "src/CMakeFiles/dfky.dir/rng/chacha_rng.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/rng/chacha_rng.cpp.o.d"
  "/root/repo/src/rng/rng.cpp" "src/CMakeFiles/dfky.dir/rng/rng.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/rng/rng.cpp.o.d"
  "/root/repo/src/rng/system_rng.cpp" "src/CMakeFiles/dfky.dir/rng/system_rng.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/rng/system_rng.cpp.o.d"
  "/root/repo/src/serial/buffer.cpp" "src/CMakeFiles/dfky.dir/serial/buffer.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/serial/buffer.cpp.o.d"
  "/root/repo/src/serial/codec.cpp" "src/CMakeFiles/dfky.dir/serial/codec.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/serial/codec.cpp.o.d"
  "/root/repo/src/tracing/blackbox.cpp" "src/CMakeFiles/dfky.dir/tracing/blackbox.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/tracing/blackbox.cpp.o.d"
  "/root/repo/src/tracing/blackbox_search.cpp" "src/CMakeFiles/dfky.dir/tracing/blackbox_search.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/tracing/blackbox_search.cpp.o.d"
  "/root/repo/src/tracing/list_tracing.cpp" "src/CMakeFiles/dfky.dir/tracing/list_tracing.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/tracing/list_tracing.cpp.o.d"
  "/root/repo/src/tracing/nonblackbox.cpp" "src/CMakeFiles/dfky.dir/tracing/nonblackbox.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/tracing/nonblackbox.cpp.o.d"
  "/root/repo/src/tracing/pirate.cpp" "src/CMakeFiles/dfky.dir/tracing/pirate.cpp.o" "gcc" "src/CMakeFiles/dfky.dir/tracing/pirate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
