# Empty dependencies file for bench_bbc.
# This may be replaced when dependencies are built.
