file(REMOVE_RECURSE
  "CMakeFiles/bench_bbc.dir/bench_bbc.cpp.o"
  "CMakeFiles/bench_bbc.dir/bench_bbc.cpp.o.d"
  "bench_bbc"
  "bench_bbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
