# Empty dependencies file for bench_expiry.
# This may be replaced when dependencies are built.
