file(REMOVE_RECURSE
  "CMakeFiles/bench_expiry.dir/bench_expiry.cpp.o"
  "CMakeFiles/bench_expiry.dir/bench_expiry.cpp.o.d"
  "bench_expiry"
  "bench_expiry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expiry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
