file(REMOVE_RECURSE
  "CMakeFiles/bench_transmission.dir/bench_transmission.cpp.o"
  "CMakeFiles/bench_transmission.dir/bench_transmission.cpp.o.d"
  "bench_transmission"
  "bench_transmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
