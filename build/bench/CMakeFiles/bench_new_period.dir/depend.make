# Empty dependencies file for bench_new_period.
# This may be replaced when dependencies are built.
