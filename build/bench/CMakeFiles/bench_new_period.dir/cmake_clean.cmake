file(REMOVE_RECURSE
  "CMakeFiles/bench_new_period.dir/bench_new_period.cpp.o"
  "CMakeFiles/bench_new_period.dir/bench_new_period.cpp.o.d"
  "bench_new_period"
  "bench_new_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_new_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
