file(REMOVE_RECURSE
  "CMakeFiles/bench_user_ops.dir/bench_user_ops.cpp.o"
  "CMakeFiles/bench_user_ops.dir/bench_user_ops.cpp.o.d"
  "bench_user_ops"
  "bench_user_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_user_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
