# Empty dependencies file for bench_user_ops.
# This may be replaced when dependencies are built.
