file(REMOVE_RECURSE
  "CMakeFiles/bench_tracing.dir/bench_tracing.cpp.o"
  "CMakeFiles/bench_tracing.dir/bench_tracing.cpp.o.d"
  "bench_tracing"
  "bench_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
