# Empty dependencies file for bench_group.
# This may be replaced when dependencies are built.
