file(REMOVE_RECURSE
  "CMakeFiles/bench_group.dir/bench_group.cpp.o"
  "CMakeFiles/bench_group.dir/bench_group.cpp.o.d"
  "bench_group"
  "bench_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
