# Empty compiler generated dependencies file for bench_encdec.
# This may be replaced when dependencies are built.
