file(REMOVE_RECURSE
  "CMakeFiles/bench_encdec.dir/bench_encdec.cpp.o"
  "CMakeFiles/bench_encdec.dir/bench_encdec.cpp.o.d"
  "bench_encdec"
  "bench_encdec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encdec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
