file(REMOVE_RECURSE
  "CMakeFiles/dfky_cli.dir/dfky_cli.cpp.o"
  "CMakeFiles/dfky_cli.dir/dfky_cli.cpp.o.d"
  "dfky_cli"
  "dfky_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfky_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
