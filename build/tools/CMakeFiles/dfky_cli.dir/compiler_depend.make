# Empty compiler generated dependencies file for dfky_cli.
# This may be replaced when dependencies are built.
