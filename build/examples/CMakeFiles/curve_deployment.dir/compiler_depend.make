# Empty compiler generated dependencies file for curve_deployment.
# This may be replaced when dependencies are built.
