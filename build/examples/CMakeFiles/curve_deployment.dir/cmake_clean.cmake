file(REMOVE_RECURSE
  "CMakeFiles/curve_deployment.dir/curve_deployment.cpp.o"
  "CMakeFiles/curve_deployment.dir/curve_deployment.cpp.o.d"
  "curve_deployment"
  "curve_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
