file(REMOVE_RECURSE
  "CMakeFiles/pay_tv.dir/pay_tv.cpp.o"
  "CMakeFiles/pay_tv.dir/pay_tv.cpp.o.d"
  "pay_tv"
  "pay_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pay_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
