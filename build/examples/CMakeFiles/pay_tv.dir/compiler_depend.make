# Empty compiler generated dependencies file for pay_tv.
# This may be replaced when dependencies are built.
