# Empty dependencies file for piracy_bust.
# This may be replaced when dependencies are built.
