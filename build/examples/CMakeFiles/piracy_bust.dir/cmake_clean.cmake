file(REMOVE_RECURSE
  "CMakeFiles/piracy_bust.dir/piracy_bust.cpp.o"
  "CMakeFiles/piracy_bust.dir/piracy_bust.cpp.o.d"
  "piracy_bust"
  "piracy_bust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piracy_bust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
