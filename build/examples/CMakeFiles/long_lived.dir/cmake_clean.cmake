file(REMOVE_RECURSE
  "CMakeFiles/long_lived.dir/long_lived.cpp.o"
  "CMakeFiles/long_lived.dir/long_lived.cpp.o.d"
  "long_lived"
  "long_lived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_lived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
