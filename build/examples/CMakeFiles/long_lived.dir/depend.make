# Empty dependencies file for long_lived.
# This may be replaced when dependencies are built.
