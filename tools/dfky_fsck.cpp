// dfky_fsck — integrity checker for a dfky_cli state-store directory
// (DESIGN.md Sect. 9).
//
//   dfky_fsck <store-dir>            check only; the store is not touched
//   dfky_fsck <store-dir> --repair   truncate torn WAL tails, drop invalid
//                                    snapshots' leftovers, remove stale files
//   dfky_fsck --replica <dirA> <dirB>
//                                    compare two replicas of the same store
//                                    (or two shard roots, shard by shard):
//                                    per-replica WAL length and chain head;
//                                    exit 1 when two WALs of the same
//                                    generation are NOT prefix-related (the
//                                    streams diverged — one replica must be
//                                    re-seeded), 0 when one replica merely
//                                    lags the other
//
// A shard root (a directory holding shard.0, shard.1, ...) is detected
// automatically: every shard is checked, the per-shard reports are printed,
// and the epoch spread is summarized (a spread of one period is the normal
// footprint of a crash between the two phases of a cross-shard new-period;
// the daemon equalizes it at the next open). The exit status is the worst
// across the shards.
//
// Exit status: 0 the store is usable (check mode: pristine; repair mode:
// recovered), 1 findings that repair could fix, 2 unrecoverable (no valid
// snapshot survives — restore from backup).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "store/store.h"

using namespace dfky;

namespace {

void usage(std::FILE* to) {
  std::fputs(
      "usage: dfky_fsck <store-dir> [--repair]\n"
      "       dfky_fsck --replica <dirA> <dirB>\n",
      to);
}

void print_report(const std::string& dir, const FsckReport& r) {
  std::printf("%s: %s\n", dir.c_str(),
              r.unrecoverable ? "UNRECOVERABLE"
              : r.ok          ? (r.repaired ? "recovered" : "clean")
                              : "needs repair");
  if (!r.unrecoverable) {
    std::printf("  generation:     %llu\n",
                static_cast<unsigned long long>(r.generation));
    std::printf("  period:         %llu\n",
                static_cast<unsigned long long>(r.period));
    std::printf("  wal records:    %zu\n", r.wal_records);
    std::printf("  torn tail:      %zu byte(s)\n", r.torn_tail_bytes);
    std::printf("  stale files:    %zu\n", r.stale_files);
  }
  for (const std::string& note : r.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
}

int report_status(const FsckReport& r) {
  if (r.unrecoverable) return 2;
  return r.ok ? 0 : 1;
}

/// Checks every shard of a shard root; exit status is the worst shard's.
int fsck_shard_set(FileIo& io, const std::string& dir, bool repair) {
  const std::size_t n = count_shards(io, dir);
  std::printf("%s: shard set with %zu shard(s)\n", dir.c_str(), n);
  int worst = 0;
  std::uint64_t min_period = UINT64_MAX, max_period = 0;
  bool have_periods = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string shard_dir = dir + "/" + shard_dir_name(i);
    FsckReport r;
    try {
      r = fsck_store(io, shard_dir, repair);
    } catch (const Error& e) {
      std::fprintf(stderr, "dfky_fsck: %s: %s\n", shard_dir.c_str(), e.what());
      worst = 2;
      continue;
    }
    print_report(shard_dir, r);
    worst = std::max(worst, report_status(r));
    if (!r.unrecoverable) {
      min_period = std::min(min_period, r.period);
      max_period = std::max(max_period, r.period);
      have_periods = true;
    }
  }
  if (have_periods) {
    if (min_period == max_period) {
      std::printf("%s: all shards at period %llu\n", dir.c_str(),
                  static_cast<unsigned long long>(max_period));
    } else {
      std::printf(
          "%s: epoch spread %llu..%llu — a torn cross-shard new-period; "
          "the next daemon open rolls the laggards forward\n",
          dir.c_str(), static_cast<unsigned long long>(min_period),
          static_cast<unsigned long long>(max_period));
    }
  }
  if (worst == 2) {
    std::printf("  a shard has no valid snapshot; restore from backup\n");
  } else if (worst == 1) {
    std::printf("  run `dfky_fsck %s --repair` to fix\n", dir.c_str());
  }
  return worst;
}

// ---- replica comparison (--replica) -------------------------------------------

void print_inspection(const std::string& dir, const WalInspection& w) {
  if (!w.ok) {
    std::printf("%s: UNRECOVERABLE (no valid snapshot)\n", dir.c_str());
  } else {
    std::printf("%s: generation %llu, period %llu, %zu WAL record(s) "
                "(%zu frame byte(s))\n",
                dir.c_str(), static_cast<unsigned long long>(w.generation),
                static_cast<unsigned long long>(w.period), w.records,
                w.frame_bytes);
    std::printf("  chain head:     %.16s...\n", w.chain_head_hex.c_str());
  }
  for (const std::string& note : w.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
}

/// Compares one store pair. Exit contribution: 0 replicas agree (equal, or
/// one lags the other on the same stream), 1 diverged, 2 unreadable.
int compare_replica_pair(FileIo& io, const std::string& a,
                         const std::string& b) {
  WalInspection wa, wb;
  try {
    wa = inspect_store_wal(io, a);
    wb = inspect_store_wal(io, b);
  } catch (const Error& e) {
    std::fprintf(stderr, "dfky_fsck: %s\n", e.what());
    return 2;
  }
  print_inspection(a, wa);
  print_inspection(b, wb);
  if (!wa.ok || !wb.ok) return 2;
  if (wa.generation != wb.generation) {
    // Different snapshot generations never share a WAL chain; the lagging
    // replica is waiting for a snapshot resync (repl-snap), not diverged.
    std::printf(
        "  replicas are on different generations (%llu vs %llu); the "
        "lagging one resyncs via snapshot shipping\n",
        static_cast<unsigned long long>(wa.generation),
        static_cast<unsigned long long>(wb.generation));
    return 0;
  }
  const WalInspection& shorter = wa.records <= wb.records ? wa : wb;
  const WalInspection& longer = wa.records <= wb.records ? wb : wa;
  const bool prefix =
      std::equal(shorter.frames.begin(), shorter.frames.end(),
                 longer.frames.begin());
  if (!prefix) {
    std::printf(
        "  DIVERGED: same generation but the shorter WAL (%zu record(s)) "
        "is not a prefix of the longer (%zu record(s)) — the replicas "
        "forked; re-seed one from the other\n",
        shorter.records, longer.records);
    return 1;
  }
  if (wa.records == wb.records) {
    std::printf("  replicas are identical (chain head %.16s...)\n",
                wa.chain_head_hex.c_str());
  } else {
    std::printf("  replicas agree; %s lags by %zu record(s)\n",
                (wa.records < wb.records ? a : b).c_str(),
                longer.records - shorter.records);
  }
  return 0;
}

int cmd_replica(FileIo& io, const std::string& a, const std::string& b) {
  const bool root_a = is_shard_root(io, a);
  const bool root_b = is_shard_root(io, b);
  if (root_a != root_b) {
    std::fprintf(stderr,
                 "dfky_fsck: --replica: '%s' %s a shard root but '%s' %s\n",
                 a.c_str(), root_a ? "is" : "is not", b.c_str(),
                 root_b ? "is" : "is not");
    return 2;
  }
  if (!root_a) {
    return compare_replica_pair(io, a, b);
  }
  const std::size_t na = count_shards(io, a);
  const std::size_t nb = count_shards(io, b);
  if (na != nb) {
    std::fprintf(stderr,
                 "dfky_fsck: --replica: shard counts differ (%zu vs %zu)\n",
                 na, nb);
    return 2;
  }
  std::printf("comparing %zu shard(s)\n", na);
  int worst = 0;
  for (std::size_t i = 0; i < na; ++i) {
    worst = std::max(
        worst, compare_replica_pair(io, a + "/" + shard_dir_name(i),
                                    b + "/" + shard_dir_name(i)));
  }
  if (worst == 0) {
    std::printf("%s and %s: replicas agree on every shard\n", a.c_str(),
                b.c_str());
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool repair = false;
  bool replica = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--repair") {
      repair = true;
    } else if (a == "--replica") {
      replica = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "dfky_fsck: unknown flag '%s'\n", a.c_str());
      usage(stderr);
      return 2;
    } else {
      dirs.push_back(a);
    }
  }
  if (replica) {
    if (repair || dirs.size() != 2) {
      std::fprintf(stderr,
                   "dfky_fsck: --replica takes exactly two store directories "
                   "(and no --repair)\n");
      usage(stderr);
      return 2;
    }
    RealFileIo rio;
    return cmd_replica(rio, dirs[0], dirs[1]);
  }
  if (dirs.size() == 1) {
    dir = dirs[0];
  }
  if (dir.empty()) {
    usage(stderr);
    return 2;
  }

  RealFileIo io;
  if (is_shard_root(io, dir)) {
    return fsck_shard_set(io, dir, repair);
  }
  FsckReport r;
  try {
    r = fsck_store(io, dir, repair);
  } catch (const Error& e) {
    std::fprintf(stderr, "dfky_fsck: %s\n", e.what());
    return 2;
  }

  print_report(dir, r);
  if (r.unrecoverable) {
    std::printf("  the store has no valid snapshot; restore from backup\n");
    return 2;
  }
  if (!r.ok) {
    std::printf("  run `dfky_fsck %s --repair` to fix\n", dir.c_str());
    return 1;
  }
  return 0;
}
