// dfky_fsck — integrity checker for a dfky_cli state-store directory
// (DESIGN.md Sect. 9).
//
//   dfky_fsck <store-dir>            check only; the store is not touched
//   dfky_fsck <store-dir> --repair   truncate torn WAL tails, drop invalid
//                                    snapshots' leftovers, remove stale files
//
// A shard root (a directory holding shard.0, shard.1, ...) is detected
// automatically: every shard is checked, the per-shard reports are printed,
// and the epoch spread is summarized (a spread of one period is the normal
// footprint of a crash between the two phases of a cross-shard new-period;
// the daemon equalizes it at the next open). The exit status is the worst
// across the shards.
//
// Exit status: 0 the store is usable (check mode: pristine; repair mode:
// recovered), 1 findings that repair could fix, 2 unrecoverable (no valid
// snapshot survives — restore from backup).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "store/store.h"

using namespace dfky;

namespace {

void usage(std::FILE* to) {
  std::fputs("usage: dfky_fsck <store-dir> [--repair]\n", to);
}

void print_report(const std::string& dir, const FsckReport& r) {
  std::printf("%s: %s\n", dir.c_str(),
              r.unrecoverable ? "UNRECOVERABLE"
              : r.ok          ? (r.repaired ? "recovered" : "clean")
                              : "needs repair");
  if (!r.unrecoverable) {
    std::printf("  generation:     %llu\n",
                static_cast<unsigned long long>(r.generation));
    std::printf("  period:         %llu\n",
                static_cast<unsigned long long>(r.period));
    std::printf("  wal records:    %zu\n", r.wal_records);
    std::printf("  torn tail:      %zu byte(s)\n", r.torn_tail_bytes);
    std::printf("  stale files:    %zu\n", r.stale_files);
  }
  for (const std::string& note : r.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
}

int report_status(const FsckReport& r) {
  if (r.unrecoverable) return 2;
  return r.ok ? 0 : 1;
}

/// Checks every shard of a shard root; exit status is the worst shard's.
int fsck_shard_set(FileIo& io, const std::string& dir, bool repair) {
  const std::size_t n = count_shards(io, dir);
  std::printf("%s: shard set with %zu shard(s)\n", dir.c_str(), n);
  int worst = 0;
  std::uint64_t min_period = UINT64_MAX, max_period = 0;
  bool have_periods = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string shard_dir = dir + "/" + shard_dir_name(i);
    FsckReport r;
    try {
      r = fsck_store(io, shard_dir, repair);
    } catch (const Error& e) {
      std::fprintf(stderr, "dfky_fsck: %s: %s\n", shard_dir.c_str(), e.what());
      worst = 2;
      continue;
    }
    print_report(shard_dir, r);
    worst = std::max(worst, report_status(r));
    if (!r.unrecoverable) {
      min_period = std::min(min_period, r.period);
      max_period = std::max(max_period, r.period);
      have_periods = true;
    }
  }
  if (have_periods) {
    if (min_period == max_period) {
      std::printf("%s: all shards at period %llu\n", dir.c_str(),
                  static_cast<unsigned long long>(max_period));
    } else {
      std::printf(
          "%s: epoch spread %llu..%llu — a torn cross-shard new-period; "
          "the next daemon open rolls the laggards forward\n",
          dir.c_str(), static_cast<unsigned long long>(min_period),
          static_cast<unsigned long long>(max_period));
    }
  }
  if (worst == 2) {
    std::printf("  a shard has no valid snapshot; restore from backup\n");
  } else if (worst == 1) {
    std::printf("  run `dfky_fsck %s --repair` to fix\n", dir.c_str());
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool repair = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--repair") {
      repair = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "dfky_fsck: unknown flag '%s'\n", a.c_str());
      usage(stderr);
      return 2;
    } else if (dir.empty()) {
      dir = a;
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (dir.empty()) {
    usage(stderr);
    return 2;
  }

  RealFileIo io;
  if (is_shard_root(io, dir)) {
    return fsck_shard_set(io, dir, repair);
  }
  FsckReport r;
  try {
    r = fsck_store(io, dir, repair);
  } catch (const Error& e) {
    std::fprintf(stderr, "dfky_fsck: %s\n", e.what());
    return 2;
  }

  print_report(dir, r);
  if (r.unrecoverable) {
    std::printf("  the store has no valid snapshot; restore from backup\n");
    return 2;
  }
  if (!r.ok) {
    std::printf("  run `dfky_fsck %s --repair` to fix\n", dir.c_str());
    return 1;
  }
  return 0;
}
