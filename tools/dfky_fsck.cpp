// dfky_fsck — integrity checker for a dfky_cli state-store directory
// (DESIGN.md Sect. 9).
//
//   dfky_fsck <store-dir>            check only; the store is not touched
//   dfky_fsck <store-dir> --repair   truncate torn WAL tails, drop invalid
//                                    snapshots' leftovers, remove stale files
//
// Exit status: 0 the store is usable (check mode: pristine; repair mode:
// recovered), 1 findings that repair could fix, 2 unrecoverable (no valid
// snapshot survives — restore from backup).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "store/store.h"

using namespace dfky;

namespace {

void usage(std::FILE* to) {
  std::fputs("usage: dfky_fsck <store-dir> [--repair]\n", to);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool repair = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--repair") {
      repair = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "dfky_fsck: unknown flag '%s'\n", a.c_str());
      usage(stderr);
      return 2;
    } else if (dir.empty()) {
      dir = a;
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (dir.empty()) {
    usage(stderr);
    return 2;
  }

  RealFileIo io;
  FsckReport r;
  try {
    r = fsck_store(io, dir, repair);
  } catch (const Error& e) {
    std::fprintf(stderr, "dfky_fsck: %s\n", e.what());
    return 2;
  }

  std::printf("%s: %s\n", dir.c_str(),
              r.unrecoverable ? "UNRECOVERABLE"
              : r.ok          ? (r.repaired ? "recovered" : "clean")
                              : "needs repair");
  if (!r.unrecoverable) {
    std::printf("  generation:     %llu\n",
                static_cast<unsigned long long>(r.generation));
    std::printf("  wal records:    %zu\n", r.wal_records);
    std::printf("  torn tail:      %zu byte(s)\n", r.torn_tail_bytes);
    std::printf("  stale files:    %zu\n", r.stale_files);
  }
  for (const std::string& note : r.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  if (r.unrecoverable) {
    std::printf("  the store has no valid snapshot; restore from backup\n");
    return 2;
  }
  if (!r.ok) {
    std::printf("  run `dfky_fsck %s --repair` to fix\n", dir.c_str());
    return 1;
  }
  return 0;
}
