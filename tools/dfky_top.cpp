// dfky_top — terminal dashboard for a running dfkyd (DESIGN.md Sect. 13).
//
// Polls the daemon's loopback observability port (`dfkyd --metrics-port N`)
// and renders, per refresh:
//   * per-verb request latency (count / p50 / p99) from the
//     dfkyd_request_ns histogram buckets on GET /metrics,
//   * the average span breakdown per verb (accept -> ... -> respond) and the
//     slowest captured requests from the GET /trace JSONL feed,
//   * replication role, follower liveness and lag from the repl gauges.
//
// With --iterations 1 it prints one snapshot and exits (no screen clearing),
// which is what the e2e scripts use; interactively it refreshes in place
// every --interval-ms while stdout is a tty.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/protocol.h"
#include "obs/json.h"

namespace {

using dfky::json::Value;

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage: dfky_top --port N [--host ADDR] [--interval-ms N]\n"
               "               [--iterations N]\n"
               "\n"
               "Dashboard over a dfkyd observability port (--metrics-port):\n"
               "per-verb latency quantiles, trace span breakdowns, slow\n"
               "requests and replication lag. --iterations 0 (default) runs\n"
               "until interrupted; --iterations 1 prints one snapshot (used\n"
               "by scripts). --interval-ms defaults to 1000.\n");
  return out == stdout ? 0 : 2;
}

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "dfky_top: %s\n", msg.c_str());
  std::exit(1);
}

/// Minimal HTTP/1.0 GET against the daemon's loopback exporter; returns the
/// response body, or nullopt when the daemon is unreachable.
std::optional<std::string> http_get(const std::string& host, int port,
                                    const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return std::nullopt;
  return resp.substr(hdr_end + 4);
}

/// One exposition line: `name{k="v",...} value`.
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// Parses the subset of the Prometheus text format our exporter emits (no
/// comments, no escapes inside label values, one sample per line).
std::vector<PromSample> parse_prometheus(const std::string& body) {
  std::vector<PromSample> out;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    PromSample s;
    std::size_t pos = line.find_first_of("{ ");
    if (pos == std::string::npos) continue;
    s.name = line.substr(0, pos);
    if (line[pos] == '{') {
      const std::size_t close = line.find('}', pos);
      if (close == std::string::npos) continue;
      std::size_t at = pos + 1;
      while (at < close) {
        const std::size_t eq = line.find('=', at);
        if (eq == std::string::npos || eq >= close) break;
        const std::string key = line.substr(at, eq - at);
        if (eq + 1 >= close || line[eq + 1] != '"') break;
        const std::size_t vend = line.find('"', eq + 2);
        if (vend == std::string::npos || vend > close) break;
        s.labels[key] = line.substr(eq + 2, vend - eq - 2);
        at = vend + 1;
        if (at < close && line[at] == ',') ++at;
      }
      pos = close + 1;
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) continue;
    try {
      s.value = std::stod(line.substr(pos));
    } catch (...) {
      continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Per-verb request histogram rebuilt from the _bucket/_count/_sum samples.
struct VerbHist {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  double count = 0;
  double sum = 0;

  /// Same rank-interpolation rule as Histogram::Snapshot::quantile.
  double quantile(double q) const {
    if (count <= 0) return 0;
    const double rank = q * count;
    double prev_cum = 0, prev_bound = 0;
    for (const auto& [le, cum] : buckets) {
      if (rank <= cum) {
        const double in_bucket = cum - prev_cum;
        if (in_bucket <= 0) return le;
        return prev_bound + (rank - prev_cum) / in_bucket * (le - prev_bound);
      }
      prev_cum = cum;
      prev_bound = le;
    }
    return prev_bound;
  }
};

std::string fmt_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  else if (ns >= 1e6) std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  else if (ns >= 1e3) std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  else std::snprintf(buf, sizeof buf, "%.0fns", ns);
  return buf;
}

void render(const std::string& metrics, const std::string& trace_jsonl) {
  const std::vector<PromSample> samples = parse_prometheus(metrics);

  // Replication identity and follower state from the repl gauges.
  std::string role = "unknown";
  double term = -1;            // dfky_repl_term; -1 = not exported
  double watchdog_state = -1;  // dfky_watchdog_state; -1 = no watchdog
  double subscribers = -1;     // dfkyd_feed_subscribers; -1 = no feed
  double feed_frames = -1;     // dfkyd_feed_frames_total
  double feed_shed = -1;       // dfkyd_feed_shed_total
  std::map<std::string, double> follower_live;
  std::map<std::string, double> follower_lag_frames;
  std::map<std::string, VerbHist> verbs;
  for (const PromSample& s : samples) {
    if (s.name == "dfkyd_role" && s.value > 0) {
      const auto it = s.labels.find("role");
      if (it != s.labels.end()) role = it->second;
    } else if (s.name == "dfky_repl_term") {
      term = s.value;
    } else if (s.name == "dfky_watchdog_state") {
      watchdog_state = s.value;
    } else if (s.name == "dfkyd_feed_subscribers") {
      subscribers = s.value;
    } else if (s.name == "dfkyd_feed_frames_total") {
      feed_frames = s.value;
    } else if (s.name == "dfkyd_feed_shed_total") {
      feed_shed = s.value;
    } else if (s.name == "dfkyd_repl_follower_live") {
      const auto it = s.labels.find("follower");
      if (it != s.labels.end()) follower_live[it->second] = s.value;
    } else if (s.name == "dfkyd_repl_lag_frames") {
      const auto it = s.labels.find("follower");
      if (it != s.labels.end()) follower_lag_frames[it->second] += s.value;
    } else if (s.name == "dfkyd_request_ns_bucket") {
      const auto verb = s.labels.find("verb");
      const auto le = s.labels.find("le");
      if (verb == s.labels.end() || le == s.labels.end()) continue;
      if (le->second == "+Inf") continue;  // count covers the tail bucket
      verbs[verb->second].buckets.emplace_back(std::stod(le->second),
                                               s.value);
    } else if (s.name == "dfkyd_request_ns_count") {
      const auto verb = s.labels.find("verb");
      if (verb != s.labels.end()) verbs[verb->second].count = s.value;
    } else if (s.name == "dfkyd_request_ns_sum") {
      const auto verb = s.labels.find("verb");
      if (verb != s.labels.end()) verbs[verb->second].sum = s.value;
    }
  }

  // Span breakdown and slow requests from the /trace JSONL feed. The
  // exporter's bucket lines arrive in ascending `le` order, so the rebuilt
  // vectors are already sorted for quantile().
  struct VerbSpans {
    std::map<std::string, double> span_ns;  // summed across traces
    double total_ns = 0;
    std::size_t traces = 0;
  };
  std::map<std::string, VerbSpans> spans_by_verb;
  struct SlowLine {
    double total_ns = 0;
    std::string verb;
    std::string outcome;
  };
  std::vector<SlowLine> slow;
  std::istringstream tin(trace_jsonl);
  std::string line;
  while (std::getline(tin, line)) {
    if (line.empty()) continue;
    Value v;
    try {
      v = Value::parse(line);
    } catch (...) {
      continue;
    }
    const Value* kind = v.find("kind");
    if (!kind) continue;
    const bool is_slow = kind->as_string() == "slow_trace";
    if (kind->as_string() != "trace" && !is_slow) continue;
    const std::string verb = v.find("verb")->as_string();
    const double total = v.find("total_ns")->as_number();
    if (is_slow) {
      slow.push_back({total, verb, v.find("outcome")->as_string()});
      continue;
    }
    VerbSpans& vs = spans_by_verb[verb];
    ++vs.traces;
    vs.total_ns += total;
    for (const Value& sp : v.find("spans")->as_array()) {
      vs.span_ns[sp.find("span")->as_string()] +=
          sp.find("dur_ns")->as_number();
    }
  }

  // Keep the new identity fields AFTER role= — scripts anchor on the
  // `^dfkyd  role=...` prefix.
  std::printf("dfkyd  role=%s", role.c_str());
  if (term >= 0) std::printf("  term=%.0f", term);
  if (watchdog_state >= 0) {
    static const char* kWatchdog[] = {"idle", "watching", "electing",
                                      "promoted"};
    const int ws = static_cast<int>(watchdog_state);
    std::printf("  watchdog=%s",
                ws >= 0 && ws < 4 ? kWatchdog[ws] : "?");
  }
  if (subscribers >= 0) {
    // Streaming feed (DESIGN.md Sect. 16): live subscriber count, frames
    // fanned out since start, slow subscribers shed.
    std::printf("  subs=%.0f", subscribers);
    if (feed_frames >= 0) std::printf("/%.0f frames", feed_frames);
    if (feed_shed > 0) std::printf(" (%.0f shed)", feed_shed);
  }
  std::printf("  followers:");
  if (follower_live.empty()) std::printf(" none");
  for (const auto& [name, live] : follower_live) {
    const auto lag = follower_lag_frames.find(name);
    std::printf(" %s=%s(lag %.0f)", name.c_str(),
                live > 0 ? "live" : "DEAD",
                lag == follower_lag_frames.end() ? 0.0 : lag->second);
  }
  std::printf("\n\n%-14s %8s %10s %10s\n", "verb", "count", "p50", "p99");
  for (const auto& [verb, h] : verbs) {
    std::printf("%-14s %8.0f %10s %10s\n", verb.c_str(), h.count,
                fmt_ns(h.quantile(0.5)).c_str(),
                fmt_ns(h.quantile(0.99)).c_str());
  }
  if (!spans_by_verb.empty()) {
    std::printf("\nspan breakdown (mean over the trace ring):\n");
    for (const auto& [verb, vs] : spans_by_verb) {
      std::printf("  %-12s (%zu traces, mean %s)\n", verb.c_str(), vs.traces,
                  fmt_ns(vs.total_ns / static_cast<double>(vs.traces))
                      .c_str());
      for (const auto& [span, ns] : vs.span_ns) {
        std::printf("    %-14s %10s %5.1f%%\n", span.c_str(),
                    fmt_ns(ns / static_cast<double>(vs.traces)).c_str(),
                    vs.total_ns > 0 ? 100.0 * ns / vs.total_ns : 0.0);
      }
    }
  }
  if (!slow.empty()) {
    std::printf("\nslow requests (over --trace-slow-us):\n");
    for (const SlowLine& s : slow) {
      std::printf("  %-12s %10s %s\n", s.verb.c_str(),
                  fmt_ns(s.total_ns).c_str(), s.outcome.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using dfky::daemon::parse_u64;

  std::string host = "127.0.0.1";
  int port = -1;
  std::uint64_t interval_ms = 1000;
  std::uint64_t iterations = 0;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") return usage(stdout);
    if (a != "--port" && a != "--host" && a != "--interval-ms" &&
        a != "--iterations") {
      std::fprintf(stderr, "dfky_top: unknown argument %s\n", a.c_str());
      return usage(stderr);
    }
    if (i + 1 == args.size()) {
      std::fprintf(stderr, "dfky_top: %s needs a value\n", a.c_str());
      return usage(stderr);
    }
    const std::string& v = args[++i];
    if (a == "--host") {
      host = v;
      continue;
    }
    const auto n = parse_u64(v);
    if (!n) {
      std::fprintf(stderr, "dfky_top: %s: '%s' is not an unsigned integer\n",
                   a.c_str(), v.c_str());
      return usage(stderr);
    }
    if (a == "--port") {
      if (*n == 0 || *n > 65535) {
        std::fprintf(stderr, "dfky_top: --port: %s is not a port\n",
                     v.c_str());
        return usage(stderr);
      }
      port = static_cast<int>(*n);
    } else if (a == "--interval-ms") {
      interval_ms = *n;
    } else {
      iterations = *n;
    }
  }
  if (port < 0) {
    std::fprintf(stderr, "dfky_top: --port is required\n");
    return usage(stderr);
  }

  const bool clear_screen = ::isatty(STDOUT_FILENO) != 0 && iterations != 1;
  for (std::uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const std::optional<std::string> metrics =
        http_get(host, port, "/metrics");
    const std::optional<std::string> trace = http_get(host, port, "/trace");
    if (!metrics || !trace) {
      die("cannot reach http://" + host + ":" + std::to_string(port) +
          " (is dfkyd running with --metrics-port?)");
    }
    if (clear_screen) std::printf("\033[H\033[2J");
    render(*metrics, *trace);
    std::fflush(stdout);
  }
  return 0;
}
