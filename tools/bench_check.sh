#!/usr/bin/env bash
# Builds the benches in Release and runs every one in the smoke profile
# (DFKY_BENCH_SMOKE=1), validating each BENCH_<name>.json against the
# dfky-bench-v1 schema. Usage:
#
#   tools/bench_check.sh [build-dir] [--full]
#
# Defaults: build-dir = build-bench, smoke profile. --full runs the real
# sweep sizes (slow; what you want when collecting numbers for the paper
# tables rather than checking plumbing).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo/build-bench"
smoke=1
for arg in "$@"; do
  case "$arg" in
    --full) smoke=0 ;;
    *) build_dir="$arg" ;;
  esac
done

benches=(bench_group bench_encdec bench_user_ops bench_tracing
         bench_transmission bench_new_period bench_bbc bench_expiry
         bench_longlived bench_recovery bench_store bench_daemon)

cmake -S "$repo" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)" \
  --target bench_schema_check "${benches[@]}"

out_dir="$build_dir/bench-out"
rm -rf "$out_dir"
mkdir -p "$out_dir"
cd "$out_dir"

for b in "${benches[@]}"; do
  echo "== $b =="
  DFKY_BENCH_SMOKE=$smoke "$build_dir/bench/$b" > "$b.out"
  tail -n 1 "$b.out"
done

shopt -s nullglob
json=(BENCH_*.json)
[ "${#json[@]}" -eq "${#benches[@]}" ] || {
  echo "bench_check: expected ${#benches[@]} BENCH_*.json, got ${#json[@]}" >&2
  exit 1
}
"$build_dir/tools/bench_schema_check" "${json[@]}"
echo "bench_check: OK ($out_dir)"
