#!/usr/bin/env bash
# Build a separate ASan+UBSan tree (-DDFKY_SANITIZE=ON) and run the channel
# fault/recovery tests under it. Usage:
#
#   tools/sanitize_check.sh [build-dir] [ctest-regex]
#
# Defaults: build-dir = build-asan, regex = the fault matrix plus the bus
# reentrancy regressions. Pass '.*' to sanitize the whole suite.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build-asan}"
filter="${2:-FaultyBus|Recovery|FaultMatrixTest|Bus\.}"

cmake -S "$repo" -B "$build_dir" -DDFKY_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc)" --target fault_tests system_tests

# halt_on_error so a sanitizer report fails the run loudly.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" -R "$filter"
echo "sanitize_check: OK"
