#!/usr/bin/env bash
# Build a separate sanitizer tree and run the racy/fault-heavy tests under
# it. Usage:
#
#   tools/sanitize_check.sh [--tsan] [build-dir] [ctest-regex]
#
# Default (ASan+UBSan, -DDFKY_SANITIZE=ON): build-dir = build-asan, regex =
# the fault matrix, the bus reentrancy regressions, the metrics registry,
# the durable-store crash matrix, and the persistence corruption fuzz.
# --tsan builds -DDFKY_SANITIZE_THREAD=ON instead and runs the
# obs concurrency tests (metrics registry and trace ring hammered from
# many threads) plus the cluster-simulator suites.
# Pass '.*' to sanitize the whole suite.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

mode=asan
if [ "${1:-}" = "--tsan" ]; then
  mode=tsan
  shift
fi

# The cluster simulator sweeps this many seeds per workload under the
# sanitizers (its in-tree default is 5).
export DFKY_SIM_SEEDS="${DFKY_SIM_SEEDS:-20}"

if [ "$mode" = "tsan" ]; then
  build_dir="${1:-$repo/build-tsan}"
  filter="${2:-ObsConcurrency|ObsCounter|ObsEvents|TraceConcurrency|SimCluster|SimHealth|SimTrace|SimFailover|SimFeed|Reactor\.}"
  sanitize_flag=-DDFKY_SANITIZE_THREAD=ON
  targets=(obs_tests sim_tests failover_sim_tests reactor_tests)
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
else
  build_dir="${1:-$repo/build-asan}"
  filter="${2:-FaultyBus|Recovery|FaultMatrixTest|Bus\.|Obs|MemFileIo|FaultyFileIo|StateStore|CrashMatrix|Fsck|PersistenceFuzz|ShardSet|ShardRouter|DaemonProto|Replication|SimCluster|SimHealth|SimTrace|SimFailover|SimFeed|TraceLifecycle|TraceSlow|TraceJson|TraceConcurrency|TraceOff|Term\.|Reactor\.}"
  sanitize_flag=-DDFKY_SANITIZE=ON
  targets=(fault_tests system_tests obs_tests store_tests core_tests
    daemon_proto_tests daemon_tests sim_tests failover_sim_tests
    reactor_tests)
  # halt_on_error so a sanitizer report fails the run loudly.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
fi

cmake -S "$repo" -B "$build_dir" "$sanitize_flag" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc)" --target "${targets[@]}"

ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" -R "$filter"
echo "sanitize_check: OK ($mode)"
