// Validates BENCH_<name>.json files against the dfky-bench-v1 schema
// (DESIGN.md Sect. 8): top-level {schema, bench, smoke, obs, records[]},
// each record {op, n, v, median_ns, p95_ns, bytes, samples}. Exit 0 when
// every file conforms; the first violation is reported on stderr, exit 1.
//
//   bench_schema_check BENCH_encdec.json [more.json ...]
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "obs/json.h"

namespace {

using dfky::json::Value;

[[noreturn]] void fail(const std::string& file, const std::string& msg) {
  std::fprintf(stderr, "bench_schema_check: %s: %s\n", file.c_str(),
               msg.c_str());
  std::exit(1);
}

const Value& member(const std::string& file, const Value& obj,
                    const char* key) {
  const Value* v = obj.find(key);
  if (!v) fail(file, std::string("missing key \"") + key + "\"");
  return *v;
}

double non_negative_number(const std::string& file, const Value& obj,
                           const char* key) {
  const Value& v = member(file, obj, key);
  if (!v.is_number()) fail(file, std::string("\"") + key + "\" not a number");
  if (v.as_number() < 0) fail(file, std::string("\"") + key + "\" negative");
  return v.as_number();
}

void check_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  Value doc;
  try {
    doc = Value::parse(text);
  } catch (const dfky::DecodeError& e) {
    fail(path, std::string("invalid JSON: ") + e.what());
  }
  if (!doc.is_object()) fail(path, "top level is not an object");
  const Value& schema = member(path, doc, "schema");
  if (!schema.is_string() || schema.as_string() != "dfky-bench-v1") {
    fail(path, "\"schema\" is not \"dfky-bench-v1\"");
  }
  const Value& bench = member(path, doc, "bench");
  if (!bench.is_string() || bench.as_string().empty()) {
    fail(path, "\"bench\" is not a non-empty string");
  }
  if (!member(path, doc, "smoke").is_bool()) fail(path, "\"smoke\" not a bool");
  if (!member(path, doc, "obs").is_bool()) fail(path, "\"obs\" not a bool");
  const Value& records = member(path, doc, "records");
  if (!records.is_array()) fail(path, "\"records\" not an array");
  if (records.as_array().empty()) fail(path, "\"records\" is empty");
  std::size_t i = 0;
  for (const Value& r : records.as_array()) {
    const std::string where = path + " record " + std::to_string(i++);
    if (!r.is_object()) fail(where, "not an object");
    const Value& op = member(where, r, "op");
    if (!op.is_string() || op.as_string().empty()) {
      fail(where, "\"op\" is not a non-empty string");
    }
    non_negative_number(where, r, "n");
    non_negative_number(where, r, "v");
    const double median = non_negative_number(where, r, "median_ns");
    const double p95 = non_negative_number(where, r, "p95_ns");
    if (p95 < median) fail(where, "p95_ns < median_ns");
    non_negative_number(where, r, "bytes");
    if (non_negative_number(where, r, "samples") < 1) {
      fail(where, "\"samples\" < 1");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_schema_check <BENCH_*.json ...>\n");
    return 1;
  }
  for (int i = 1; i < argc; ++i) check_file(argv[i]);
  std::printf("bench_schema_check: %d file(s) ok\n", argc - 1);
  return 0;
}
