// dfkyd — serve one store directory (or shard root) over a unix socket
// (DESIGN.md Sect. 10–11).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage: dfkyd <store-dir> --socket PATH [--metrics-port N]\n"
               "             [--snapshot-every N] [--trace-slow-us N]\n"
               "             [--follower] [--replicate-to PATH]...\n"
               "\n"
               "Serves the store over a newline protocol (see dfky_cli\n"
               "client). A shard root (init --store --shards N) is detected\n"
               "automatically: every shard's LOCK is taken and requests are\n"
               "routed by user id. --metrics-port 0 binds an ephemeral\n"
               "loopback port for GET /metrics and GET /trace; omit the flag\n"
               "to disable both. Requests slower than --trace-slow-us\n"
               "(default 10000; 0 disables) are kept in the slow-request log\n"
               "served by the `trace` verb and GET /trace.\n"
               "\n"
               "Replication (DESIGN.md Sect. 12): --follower comes up as a\n"
               "read-only replica (mutations rejected; state advances via\n"
               "repl-append/repl-snap from a primary; `dfky_cli client <sock>\n"
               "promote` flips it to primary). --replicate-to PATH (repeatable)\n"
               "streams this primary's WAL to the follower daemon listening on\n"
               "each PATH; mutations are acknowledged only after every live\n"
               "follower acked them.\n");
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using dfky::daemon::parse_u64;

  std::vector<std::string> args(argv + 1, argv + argc);
  dfky::daemon::DaemonOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") return usage(stdout);
    if (a == "--follower") {
      opts.follower = true;
      continue;
    }
    if (a == "--replicate-to") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "dfkyd: %s needs a value\n", a.c_str());
        return usage(stderr);
      }
      opts.replicate_to.push_back(args[++i]);
      continue;
    }
    if (a == "--trace-slow-us") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "dfkyd: %s needs a value\n", a.c_str());
        return usage(stderr);
      }
      const std::string& v = args[++i];
      const auto n = parse_u64(v);
      if (!n) {
        std::fprintf(stderr, "dfkyd: %s: '%s' is not an unsigned integer\n",
                     a.c_str(), v.c_str());
        return usage(stderr);
      }
      dfky::obs::set_slow_threshold_ns(*n * 1000);
      continue;
    }
    if (a == "--socket" || a == "--metrics-port" || a == "--snapshot-every") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "dfkyd: %s needs a value\n", a.c_str());
        return usage(stderr);
      }
      const std::string& v = args[++i];
      if (a == "--socket") {
        opts.socket_path = v;
        continue;
      }
      const auto n = parse_u64(v);
      if (!n) {
        std::fprintf(stderr, "dfkyd: %s: '%s' is not an unsigned integer\n",
                     a.c_str(), v.c_str());
        return usage(stderr);
      }
      if (a == "--metrics-port") {
        if (*n > 65535) {
          std::fprintf(stderr, "dfkyd: --metrics-port: %s is not a port\n",
                       v.c_str());
          return usage(stderr);
        }
        opts.metrics_port = static_cast<int>(*n);
      } else {
        if (*n == 0) {
          std::fprintf(stderr, "dfkyd: --snapshot-every must be positive\n");
          return usage(stderr);
        }
        opts.store.snapshot_every = static_cast<std::size_t>(*n);
      }
      continue;
    }
    if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "dfkyd: unknown flag %s\n", a.c_str());
      return usage(stderr);
    }
    if (!opts.store_dir.empty()) {
      std::fprintf(stderr, "dfkyd: more than one store directory given\n");
      return usage(stderr);
    }
    opts.store_dir = a;
  }
  if (opts.store_dir.empty() || opts.socket_path.empty()) {
    std::fprintf(stderr, "dfkyd: a store directory and --socket are required\n");
    return usage(stderr);
  }
  if (opts.follower && !opts.replicate_to.empty()) {
    std::fprintf(stderr,
                 "dfkyd: --follower and --replicate-to are mutually exclusive "
                 "(a follower becomes a sender only after `promote`)\n");
    return usage(stderr);
  }

  // Daemon latencies live well under the generic 1us-floor timing buckets;
  // registering sub-microsecond bounds here (before any traffic creates the
  // series) re-buckets every labeled variant without touching call sites.
  dfky::obs::MetricsRegistry::instance().set_default_bounds(
      "dfkyd_request_ns", dfky::obs::Histogram::fast_ns_bounds());
  dfky::obs::MetricsRegistry::instance().set_default_bounds(
      "dfkyd_commit_batch_ns", dfky::obs::Histogram::fast_ns_bounds());
  dfky::obs::MetricsRegistry::instance().set_default_bounds(
      "dfkyd_epoch_barrier_ns", dfky::obs::Histogram::fast_ns_bounds());
  dfky::publish_build_info();

  try {
    dfky::daemon::Daemon daemon(std::move(opts));
    return daemon.run();
  } catch (const dfky::StoreLockedError& e) {
    std::fprintf(stderr, "dfkyd: %s\n", e.what());
    return 1;
  } catch (const dfky::Error& e) {
    std::fprintf(stderr, "dfkyd: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfkyd: internal error: %s\n", e.what());
    return 1;
  }
}
