// dfkyd — serve one store directory (or shard root) over a unix socket
// (DESIGN.md Sect. 10–11).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage: dfkyd <store-dir> --socket PATH [--metrics-port N]\n"
               "             [--snapshot-every N] [--trace-slow-us N]\n"
               "             [--backlog N] [--idle-timeout-ms N]\n"
               "             [--workers N] [--busy-queue-limit N]\n"
               "             [--follower] [--replicate-to PATH]...\n"
               "             [--auto-failover]\n"
               "             [--failover-timings LEASE,HB,TIMEOUT,EMIN,EMAX]\n"
               "\n"
               "Serves the store over a newline protocol (see dfky_cli\n"
               "client). A shard root (init --store --shards N) is detected\n"
               "automatically: every shard's LOCK is taken and requests are\n"
               "routed by user id. --metrics-port 0 binds an ephemeral\n"
               "loopback port for GET /metrics and GET /trace; omit the flag\n"
               "to disable both. Requests slower than --trace-slow-us\n"
               "(default 10000; 0 disables) are kept in the slow-request log\n"
               "served by the `trace` verb and GET /trace.\n"
               "\n"
               "Front end (DESIGN.md Sect. 15): connections are served by an\n"
               "epoll reactor; requests execute on --workers threads (default:\n"
               "hardware, clamped to 4..16). --backlog sets the listen(2)\n"
               "backlog (default SOMAXCONN; the kernel clamps to\n"
               "net.core.somaxconn). --idle-timeout-ms closes client\n"
               "connections idle that long (default 0: never).\n"
               "--busy-queue-limit sheds mutations with `err busy` while that\n"
               "many are queued un-acked at the committers (default 1024;\n"
               "0 disables).\n"
               "\n"
               "Replication (DESIGN.md Sect. 12): --follower comes up as a\n"
               "read-only replica (mutations rejected; state advances via\n"
               "repl-append/repl-snap from a primary; `dfky_cli client <sock>\n"
               "promote` flips it to primary). --replicate-to PATH (repeatable)\n"
               "streams this primary's WAL to the follower daemon listening on\n"
               "each PATH; mutations are acknowledged only after every live\n"
               "follower acked them.\n"
               "\n"
               "Self-healing (DESIGN.md Sect. 14): --auto-failover arms\n"
               "lease-fenced failover. Give EVERY node the same symmetric\n"
               "--replicate-to peer list (each node lists every OTHER member).\n"
               "A primary then acks only while a majority of followers holds\n"
               "each batch, followers watchdog the primary and auto-promote\n"
               "the most-caught-up one when it dies, and a revived stale\n"
               "primary is fenced (exits nonzero) instead of splitting\n"
               "history. --failover-timings tunes, in ms: ack lease, heartbeat\n"
               "interval, silence timeout, election delay min, max (defaults\n"
               "750,200,1000,100,400; keep lease <= timeout).\n");
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using dfky::daemon::parse_u64;

  std::vector<std::string> args(argv + 1, argv + argc);
  dfky::daemon::DaemonOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") return usage(stdout);
    if (a == "--follower") {
      opts.follower = true;
      continue;
    }
    if (a == "--auto-failover") {
      opts.auto_failover = true;
      continue;
    }
    if (a == "--failover-timings") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "dfkyd: %s needs a value\n", a.c_str());
        return usage(stderr);
      }
      const std::string& v = args[++i];
      int* const dst[] = {&opts.lease_ms, &opts.hb_interval_ms,
                          &opts.hb_timeout_ms, &opts.election_min_ms,
                          &opts.election_max_ms};
      std::size_t pos = 0;
      bool bad = false;
      for (std::size_t f = 0; f < 5 && !bad; ++f) {
        const std::size_t comma = v.find(',', pos);
        if ((f < 4) != (comma != std::string::npos)) {
          bad = true;
          break;
        }
        const auto n = parse_u64(v.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos));
        if (!n || *n == 0 || *n > 600000) {
          bad = true;
          break;
        }
        *dst[f] = static_cast<int>(*n);
        pos = comma + 1;
      }
      if (bad) {
        std::fprintf(stderr,
                     "dfkyd: --failover-timings wants five positive ms values "
                     "'lease,hb,timeout,emin,emax', got '%s'\n",
                     v.c_str());
        return usage(stderr);
      }
      continue;
    }
    if (a == "--replicate-to") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "dfkyd: %s needs a value\n", a.c_str());
        return usage(stderr);
      }
      opts.replicate_to.push_back(args[++i]);
      continue;
    }
    if (a == "--trace-slow-us") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "dfkyd: %s needs a value\n", a.c_str());
        return usage(stderr);
      }
      const std::string& v = args[++i];
      const auto n = parse_u64(v);
      if (!n) {
        std::fprintf(stderr, "dfkyd: %s: '%s' is not an unsigned integer\n",
                     a.c_str(), v.c_str());
        return usage(stderr);
      }
      dfky::obs::set_slow_threshold_ns(*n * 1000);
      continue;
    }
    if (a == "--socket" || a == "--metrics-port" || a == "--snapshot-every" ||
        a == "--backlog" || a == "--idle-timeout-ms" || a == "--workers" ||
        a == "--busy-queue-limit") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "dfkyd: %s needs a value\n", a.c_str());
        return usage(stderr);
      }
      const std::string& v = args[++i];
      if (a == "--socket") {
        opts.socket_path = v;
        continue;
      }
      const auto n = parse_u64(v);
      if (!n) {
        std::fprintf(stderr, "dfkyd: %s: '%s' is not an unsigned integer\n",
                     a.c_str(), v.c_str());
        return usage(stderr);
      }
      if (a == "--metrics-port") {
        if (*n > 65535) {
          std::fprintf(stderr, "dfkyd: --metrics-port: %s is not a port\n",
                       v.c_str());
          return usage(stderr);
        }
        opts.metrics_port = static_cast<int>(*n);
      } else if (a == "--backlog") {
        if (*n == 0 || *n > 1000000) {
          std::fprintf(stderr, "dfkyd: --backlog must be in 1..1000000\n");
          return usage(stderr);
        }
        opts.backlog = static_cast<int>(*n);
      } else if (a == "--idle-timeout-ms") {
        if (*n > 86400000) {
          std::fprintf(stderr, "dfkyd: --idle-timeout-ms: too large\n");
          return usage(stderr);
        }
        opts.idle_timeout_ms = static_cast<int>(*n);
      } else if (a == "--workers") {
        if (*n == 0 || *n > 1024) {
          std::fprintf(stderr, "dfkyd: --workers must be in 1..1024\n");
          return usage(stderr);
        }
        opts.workers = static_cast<int>(*n);
      } else if (a == "--busy-queue-limit") {
        opts.busy_queue_limit = static_cast<std::size_t>(*n);
      } else {
        if (*n == 0) {
          std::fprintf(stderr, "dfkyd: --snapshot-every must be positive\n");
          return usage(stderr);
        }
        opts.store.snapshot_every = static_cast<std::size_t>(*n);
      }
      continue;
    }
    if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "dfkyd: unknown flag %s\n", a.c_str());
      return usage(stderr);
    }
    if (!opts.store_dir.empty()) {
      std::fprintf(stderr, "dfkyd: more than one store directory given\n");
      return usage(stderr);
    }
    opts.store_dir = a;
  }
  if (opts.store_dir.empty() || opts.socket_path.empty()) {
    std::fprintf(stderr, "dfkyd: a store directory and --socket are required\n");
    return usage(stderr);
  }
  if (opts.follower && !opts.replicate_to.empty() && !opts.auto_failover) {
    std::fprintf(stderr,
                 "dfkyd: --follower and --replicate-to are mutually exclusive "
                 "without --auto-failover (a follower becomes a sender only "
                 "after `promote`; with auto-failover the symmetric peer list "
                 "is how a promoted follower finds its followers)\n");
    return usage(stderr);
  }
  if (opts.auto_failover && opts.replicate_to.empty()) {
    std::fprintf(stderr,
                 "dfkyd: --auto-failover needs --replicate-to peers (the "
                 "symmetric cluster member list)\n");
    return usage(stderr);
  }
  if (opts.auto_failover && opts.lease_ms > opts.hb_timeout_ms) {
    std::fprintf(stderr,
                 "dfkyd: --failover-timings: lease (%d) must not exceed the "
                 "silence timeout (%d) — a deposed primary must fence itself "
                 "before any follower campaigns\n",
                 opts.lease_ms, opts.hb_timeout_ms);
    return usage(stderr);
  }

  // Daemon latencies live well under the generic 1us-floor timing buckets;
  // registering sub-microsecond bounds here (before any traffic creates the
  // series) re-buckets every labeled variant without touching call sites.
  dfky::obs::MetricsRegistry::instance().set_default_bounds(
      "dfkyd_request_ns", dfky::obs::Histogram::fast_ns_bounds());
  dfky::obs::MetricsRegistry::instance().set_default_bounds(
      "dfkyd_commit_batch_ns", dfky::obs::Histogram::fast_ns_bounds());
  dfky::obs::MetricsRegistry::instance().set_default_bounds(
      "dfkyd_epoch_barrier_ns", dfky::obs::Histogram::fast_ns_bounds());
  dfky::publish_build_info();

  try {
    dfky::daemon::Daemon daemon(std::move(opts));
    return daemon.run();
  } catch (const dfky::StoreLockedError& e) {
    std::fprintf(stderr, "dfkyd: %s\n", e.what());
    return 1;
  } catch (const dfky::Error& e) {
    std::fprintf(stderr, "dfkyd: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfkyd: internal error: %s\n", e.what());
    return 1;
  }
}
