// bench_compare — regression gate over dfky-bench-v1 output (DESIGN.md
// Sect. 8). Compares a baseline directory of BENCH_*.json files against a
// current run and fails when any matching record's median_ns grew by more
// than the threshold factor.
//
//   bench_compare <baseline-dir> <current-dir> [--threshold R]
//
// Records are matched by (bench, op, n, v). Timing-free records fall back
// to comparing their `bytes` payload against the same threshold — the
// transmission benches measure wire size, not latency, and a ciphertext
// that grew past the factor is as much a regression as a slow one. Records
// with neither signal and benches present on only one side are reported
// but never fail the gate — new benches must not need a synthetic
// baseline. Exit status: 0 no regression, 1 regression, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "store/file_io.h"

using namespace dfky;

namespace {

struct Key {
  std::string bench, op;
  std::uint64_t n = 0, v = 0;
  bool operator<(const Key& o) const {
    if (bench != o.bench) return bench < o.bench;
    if (op != o.op) return op < o.op;
    if (n != o.n) return n < o.n;
    return v < o.v;
  }
};

struct Row {
  std::uint64_t median_ns = 0;
  std::uint64_t bytes = 0;
};

using Table = std::map<Key, Row>;

void usage(std::FILE* to) {
  std::fputs(
      "usage: bench_compare <baseline-dir> <current-dir> [--threshold R]\n",
      to);
}

std::uint64_t field_u64(const json::Value& rec, const char* name) {
  const json::Value* f = rec.find(name);
  if (f == nullptr) throw DecodeError("bench record missing field");
  return static_cast<std::uint64_t>(f->as_number());
}

/// Loads every BENCH_*.json in `dir` into one (bench,op,n,v)->median table.
Table load_dir(FileIo& io, const std::string& dir) {
  if (!io.is_dir(dir)) throw IoError("no such directory: " + dir);
  Table out;
  for (const std::string& name : io.list(dir)) {
    if (name.rfind("BENCH_", 0) != 0 ||
        name.size() < 11 || name.substr(name.size() - 5) != ".json") {
      continue;
    }
    const Bytes raw = io.read(dir + "/" + name);
    const json::Value doc = json::Value::parse(
        std::string(reinterpret_cast<const char*>(raw.data()), raw.size()));
    const json::Value* schema = doc.find("schema");
    if (schema == nullptr || schema->as_string() != "dfky-bench-v1") {
      throw DecodeError(name + ": not a dfky-bench-v1 file");
    }
    const json::Value* bench_name = doc.find("bench");
    const json::Value* records = doc.find("records");
    if (bench_name == nullptr || records == nullptr) {
      throw DecodeError(name + ": missing bench/records");
    }
    for (const json::Value& rec : records->as_array()) {
      const json::Value* op = rec.find("op");
      if (op == nullptr) throw DecodeError(name + ": record missing op");
      const Key k{bench_name->as_string(), op->as_string(),
                  field_u64(rec, "n"), field_u64(rec, "v")};
      out[k] = Row{field_u64(rec, "median_ns"), field_u64(rec, "bytes")};
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_dir, cur_dir;
  double threshold = 1.5;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold") {
      if (i + 1 >= argc) {
        usage(stderr);
        return 2;
      }
      char* end = nullptr;
      threshold = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || threshold <= 0) {
        std::fprintf(stderr, "bench_compare: bad threshold '%s'\n", argv[i]);
        return 2;
      }
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag '%s'\n", a.c_str());
      usage(stderr);
      return 2;
    } else if (base_dir.empty()) {
      base_dir = a;
    } else if (cur_dir.empty()) {
      cur_dir = a;
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (cur_dir.empty()) {
    usage(stderr);
    return 2;
  }

  RealFileIo io;
  Table base, cur;
  try {
    base = load_dir(io, base_dir);
    cur = load_dir(io, cur_dir);
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  std::size_t compared = 0, skipped = 0, regressions = 0;
  std::printf("%-14s %-24s %8s %4s %12s %12s %8s\n", "bench", "op", "n", "v",
              "base", "cur", "ratio");
  for (const auto& [key, cur_row] : cur) {
    const auto it = base.find(key);
    if (it == base.end()) {
      ++skipped;
      continue;  // new record: nothing to regress against
    }
    const Row& base_row = it->second;
    // Timing first; timing-free records gate on wire size instead.
    std::uint64_t base_val = base_row.median_ns, cur_val = cur_row.median_ns;
    const char* unit = "ns";
    if (base_val == 0 || cur_val == 0) {
      base_val = base_row.bytes;
      cur_val = cur_row.bytes;
      unit = "B";
    }
    if (base_val == 0 || cur_val == 0) {
      ++skipped;  // no timing, no payload: nothing to compare
      continue;
    }
    const double ratio =
        static_cast<double>(cur_val) / static_cast<double>(base_val);
    const bool bad = ratio > threshold;
    if (bad) ++regressions;
    ++compared;
    std::printf("%-14s %-24s %8llu %4llu %10llu%-2s %10llu%-2s %7.2fx%s\n",
                key.bench.c_str(), key.op.c_str(),
                static_cast<unsigned long long>(key.n),
                static_cast<unsigned long long>(key.v),
                static_cast<unsigned long long>(base_val), unit,
                static_cast<unsigned long long>(cur_val), unit, ratio,
                bad ? "  REGRESSION" : "");
  }
  for (const auto& [key, row] : base) {
    if (cur.find(key) == cur.end()) {
      std::printf("# note: baseline record %s/%s (n=%llu, v=%llu) missing "
                  "from current run\n",
                  key.bench.c_str(), key.op.c_str(),
                  static_cast<unsigned long long>(key.n),
                  static_cast<unsigned long long>(key.v));
      (void)row;
    }
  }
  std::printf("bench_compare: %zu compared, %zu skipped, %zu regression(s), "
              "threshold %.2fx\n",
              compared, skipped, regressions, threshold);
  return regressions == 0 ? 0 : 1;
}
