// dfky_cli — command-line management tool for the scalable trace-and-revoke
// system. State lives in files, so a whole deployment can be driven from a
// shell:
//
//   dfky_cli init sys --v 8 --group sec512 --store
//   dfky_cli status sys
//   dfky_cli add sys alice.key
//   dfky_cli add sys bob.key
//   dfky_cli revoke sys 1 --reset-out reset
//   dfky_cli new-period sys --reset-out reset
//   dfky_cli encrypt sys payload.bin broadcast.bin
//   dfky_cli decrypt alice.key broadcast.bin
//   dfky_cli apply-reset alice.key reset.0.bin
//   dfky_cli pirate sys pirate.rep 0 1           (demo: forge a pirate key)
//   dfky_cli trace sys pirate.rep
//
// `<state>` is either a crash-consistent store DIRECTORY (created with
// `init --store`; WAL + checksummed snapshots, every mutation durable
// before the command acknowledges — see DESIGN.md Sect. 9 and dfky_fsck)
// or a legacy single state FILE (rewritten whole on every mutation). The
// commands auto-detect which one they were given.
//
// Key files bundle the group description with the user key so the receiver
// side needs no other configuration.
//
// Observability: every subcommand accepts `--metrics-out <file>`, which
// appends this process's metrics snapshot (JSONL, dfky-metrics-v1) to the
// file on success. `dfky_cli stats <file>` merges the snapshots from a whole
// scripted session (counters sum, gauges last-write-wins, histogram buckets
// add) and prints a summary or Prometheus text; `--since <unix-ts>` keeps
// only the snapshots stamped at or after the given time.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <ctime>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "broadcast/bus.h"
#include "core/content.h"
#include "core/keyfile.h"
#include "core/manager.h"
#include "core/receiver.h"
#include "daemon/protocol.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "rng/system_rng.h"
#include "serial/codec.h"
#include "store/store.h"
#include "tracing/nonblackbox.h"
#include "tracing/pirate.h"

using namespace dfky;

namespace {

void usage(std::FILE* to);

[[noreturn]] void die(const std::string& msg) {
  std::cerr << "dfky_cli: " << msg << "\n";
  std::exit(1);
}

/// Malformed command line (as opposed to a failing operation): usage text
/// on stderr and exit code 2, so scripts can tell the two apart.
[[noreturn]] void die_usage(const std::string& msg) {
  std::cerr << "dfky_cli: " << msg << "\n";
  usage(stderr);
  std::exit(2);
}

/// Strict numeric argv parsing — std::stoul would accept "-5" (wrapping),
/// " 8" and "8junk", and throws on overflow; parse_u64 rejects them all.
std::uint64_t parse_count(const std::string& cmd, const std::string& what,
                          const std::string& s) {
  const std::optional<std::uint64_t> v = daemon::parse_u64(s);
  if (!v) {
    die_usage(cmd + ": " + what + " expects an unsigned integer, got '" + s +
              "'");
  }
  return *v;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot open " + path);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) die("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

// ---- key files (format shared with dfkyd — see core/keyfile.h) ---------------

using KeyFile = KeyFileData;

void write_key_file(const std::string& path, const SecurityManager& mgr,
                    const UserKey& key) {
  write_file(path,
             encode_key_file(mgr.params(), mgr.verification_key(), key));
}

KeyFile read_key_file(const std::string& path) {
  return decode_key_file(read_file(path));
}

RealFileIo& real_io() {
  static RealFileIo io;
  return io;
}

/// A loaded deployment: either a durable store directory or a legacy
/// single-file state. Mutating commands go through the store (durable
/// before they return) or mutate the legacy manager and save() it whole.
struct StateHandle {
  std::string path;
  std::optional<StateStore> store;        // directory deployments
  std::optional<SecurityManager> legacy;  // single-file deployments

  const SecurityManager& mgr() const {
    return store ? store->manager() : *legacy;
  }
  bool is_store() const { return store.has_value(); }
  /// Legacy only: rewrites the whole state file (the crash-unsafe path the
  /// store replaces). Store mutations are already durable.
  void save_legacy() {
    if (legacy) write_file(path, legacy->save_state());
  }
};

StateHandle load_state(const std::string& path) {
  StateHandle h;
  h.path = path;
  if (real_io().is_dir(path)) {
    if (is_shard_root(real_io(), path)) {
      die("state store '" + path +
          "' is a shard set — serve it with dfkyd and use `dfky_cli client` "
          "(`dfky_cli status` prints an offline summary)");
    }
    try {
      h.store.emplace(StateStore::open(real_io(), path));
    } catch (const StoreLockedError& e) {
      die(std::string(e.what()) +
          " — use `dfky_cli client` to talk to the daemon that holds it");
    } catch (const Error& e) {
      die("state store '" + path + "' is corrupt or unreadable: " + e.what() +
          " — run `dfky_fsck " + path + "` for a diagnosis");
    }
    const RecoveryReport& r = h.store->recovery_report();
    if (r.truncated_records > 0 || r.skipped_snapshots > 0) {
      std::fprintf(stderr,
                   "dfky_cli: recovered %s: dropped %zu torn record(s) "
                   "(%zu byte(s)), skipped %zu bad snapshot(s)\n",
                   path.c_str(), r.truncated_records, r.truncated_bytes,
                   r.skipped_snapshots);
    }
  } else {
    try {
      h.legacy.emplace(SecurityManager::restore_state(read_file(path)));
    } catch (const Error& e) {
      die("state file '" + path +
          "' is corrupt or not a dfky state file: " + e.what());
    }
  }
  return h;
}

std::optional<std::string> flag_value(std::vector<std::string>& args,
                                      const std::string& name) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == name) {
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      return value;
    }
  }
  return std::nullopt;
}

/// Called after a command has consumed all the flags it knows; anything
/// left that looks like a flag is a usage error (exit 1, message on
/// stderr) rather than a silently ignored positional.
void reject_unknown_flags(const std::vector<std::string>& args,
                          const std::string& cmd) {
  for (const std::string& a : args) {
    if (a.size() >= 2 && a[0] == '-' && a[1] == '-') {
      die(cmd + ": unknown flag '" + a + "'");
    }
  }
}

Group group_by_name(const std::string& name) {
  if (name == "test128") return Group(GroupParams::named(ParamId::kTest128));
  if (name == "sec256") return Group(GroupParams::named(ParamId::kSec256));
  if (name == "sec512") return Group(GroupParams::named(ParamId::kSec512));
  if (name == "sec1024") return Group(GroupParams::named(ParamId::kSec1024));
  if (name == "sec2048") return Group(GroupParams::named(ParamId::kSec2048));
  if (name == "secp256k1") return Group(CurveSpec::secp256k1());
  if (name == "p256") return Group(CurveSpec::p256());
  die("unknown group '" + name +
      "' (test128|sec256|sec512|sec1024|sec2048|secp256k1|p256)");
}

// ---- commands -----------------------------------------------------------------

int cmd_init(std::vector<std::string> args) {
  if (args.empty()) die("init: missing state file");
  const std::string state_path = args[0];
  args.erase(args.begin());
  const std::size_t v = static_cast<std::size_t>(
      parse_count("init", "--v", flag_value(args, "--v").value_or("8")));
  const std::string group_name =
      flag_value(args, "--group").value_or("sec512");
  const std::size_t shards = static_cast<std::size_t>(parse_count(
      "init", "--shards", flag_value(args, "--shards").value_or("1")));
  bool as_store = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--store") {
      as_store = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  reject_unknown_flags(args, "init");
  if (shards == 0) die("init: --shards must be positive");
  if (shards > 1 && !as_store) die("init: --shards requires --store");
  SystemRng rng;
  const SystemParams sp =
      SystemParams::create(group_by_name(group_name), v, rng);
  if (shards > 1) {
    // A shard set: shard.<k> subdirectories, one independent manager (and
    // LOCK, WAL, snapshot chain) per shard — served by a sharded dfkyd.
    std::vector<SecurityManager> managers;
    for (std::size_t i = 0; i < shards; ++i) managers.emplace_back(sp, rng);
    create_shard_set(real_io(), state_path, std::move(managers), rng);
    std::printf("initialized: group=%s v=%zu m=%zu store=%s/ (%zu shards)\n",
                group_name.c_str(), v, sp.max_collusion(), state_path.c_str(),
                shards);
    return 0;
  }
  SecurityManager mgr(sp, rng);
  if (as_store) {
    const std::size_t state_bytes = mgr.save_state().size();
    StateStore::create(real_io(), state_path, std::move(mgr), rng);
    std::printf(
        "initialized: group=%s v=%zu m=%zu store=%s/ (snapshot %zu bytes)\n",
        group_name.c_str(), v, sp.max_collusion(), state_path.c_str(),
        state_bytes);
  } else {
    write_file(state_path, mgr.save_state());
    std::printf("initialized: group=%s v=%zu m=%zu state=%s (%zu bytes)\n",
                group_name.c_str(), v, sp.max_collusion(), state_path.c_str(),
                mgr.save_state().size());
  }
  return 0;
}

/// Offline summary of a shard set. Opening takes every shard's LOCK for
/// the duration and equalizes a torn epoch (the same roll-forward a
/// daemon restart performs), so this doubles as an offline repair.
int shard_set_status(const std::string& path) {
  SystemRng rng;
  ShardSetReport rep;
  std::vector<StateStore> stores;
  try {
    stores = open_shard_set(real_io(), path, rng, {}, &rep);
  } catch (const StoreLockedError& e) {
    die(std::string(e.what()) +
        " — use `dfky_cli client` to talk to the daemon that holds it");
  } catch (const Error& e) {
    die("shard set '" + path + "' is corrupt or unreadable: " + e.what() +
        " — run `dfky_fsck " + path + "` for a diagnosis");
  }
  std::size_t active = 0, revoked = 0;
  for (const StateStore& s : stores) {
    for (const UserRecord& u : s.manager().users()) {
      (u.revoked ? revoked : active) += 1;
    }
  }
  std::printf("shards:            %zu\n", rep.shards);
  std::printf("period:            %llu%s\n",
              static_cast<unsigned long long>(rep.epoch),
              rep.rolled_forward > 0 ? " (equalized at open)" : "");
  std::printf("users:             %zu active, %zu revoked\n", active, revoked);
  if (rep.rolled_forward > 0) {
    std::printf("roll-forwards:     %zu (torn cross-shard new-period)\n",
                rep.rolled_forward);
  }
  for (std::size_t i = 0; i < stores.size(); ++i) {
    const StateStore& s = stores[i];
    std::size_t a = 0, r = 0;
    for (const UserRecord& u : s.manager().users()) {
      (u.revoked ? r : a) += 1;
    }
    std::printf(
        "shard %zu:           period %llu, %zu active, %zu revoked, "
        "generation %llu, %zu WAL record(s)\n",
        i, static_cast<unsigned long long>(s.manager().period()), a, r,
        static_cast<unsigned long long>(s.generation()), s.wal_records());
  }
  return 0;
}

int cmd_status(std::vector<std::string> args) {
  reject_unknown_flags(args, "status");
  if (args.empty()) die("status: missing state file");
  if (real_io().is_dir(args[0]) && is_shard_root(real_io(), args[0])) {
    return shard_set_status(args[0]);
  }
  const StateHandle h = load_state(args[0]);
  const SecurityManager& mgr = h.mgr();
  std::size_t active = 0, revoked = 0;
  for (const UserRecord& u : mgr.users()) {
    (u.revoked ? revoked : active) += 1;
  }
  std::printf("period:            %llu\n",
              static_cast<unsigned long long>(mgr.period()));
  std::printf("saturation:        %zu / %zu\n", mgr.saturation_level(),
              mgr.saturation_limit());
  std::printf("users:             %zu active, %zu revoked\n", active, revoked);
  std::printf("group:             %s, %zu-bit order\n",
              mgr.params().group.is_elliptic() ? "elliptic-curve" : "Z_p*",
              mgr.params().group.order().bit_length());
  std::printf("element size:      %zu bytes\n",
              mgr.params().group.element_size());
  if (h.is_store()) {
    std::printf("store:             generation %llu, %zu WAL record(s)\n",
                static_cast<unsigned long long>(h.store->generation()),
                h.store->wal_records());
  }
  return 0;
}

int cmd_add(std::vector<std::string> args) {
  reject_unknown_flags(args, "add");
  if (args.size() < 2) die("add: usage: add <state> <key-out>");
  StateHandle h = load_state(args[0]);
  SystemRng rng;
  const auto added =
      h.is_store() ? h.store->add_user(rng) : h.legacy->add_user(rng);
  write_key_file(args[1], h.mgr(), added.key);
  h.save_legacy();
  std::printf("added user #%llu -> %s\n",
              static_cast<unsigned long long>(added.id), args[1].c_str());
  return 0;
}

/// Serializes and "broadcasts" the reset bundles a mutation produced.
/// File-based deployments have no live subscribers, but the reset still
/// goes over the broadcast channel so the dfky_bus_* accounting matches
/// what a wired deployment would report.
void emit_reset_bundles(const std::vector<SignedResetBundle>& bundles,
                        const Group& group, const std::string& reset_prefix) {
  BroadcastBus bus;
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    Writer w;
    bundles[i].serialize(w, group);
    const std::string path = reset_prefix + "." + std::to_string(i) + ".bin";
    write_file(path, w.bytes());
    bus.publish({MsgType::kChangePeriod, w.bytes()});
    std::printf("period change -> broadcast %s (%zu bytes) to subscribers\n",
                path.c_str(), w.size());
  }
}

int cmd_revoke(std::vector<std::string> args) {
  if (args.size() < 2) die("revoke: usage: revoke <state> <id...> [--reset-out prefix]");
  const std::string state_path = args[0];
  args.erase(args.begin());
  const std::string reset_prefix =
      flag_value(args, "--reset-out").value_or("reset");
  reject_unknown_flags(args, "revoke");
  std::vector<std::uint64_t> ids;
  for (const std::string& a : args) {
    ids.push_back(parse_count("revoke", "user id", a));
  }
  StateHandle h = load_state(state_path);
  SystemRng rng;
  const auto bundles = h.is_store() ? h.store->remove_users(ids, rng)
                                    : h.legacy->remove_users(ids, rng);
  h.save_legacy();
  std::printf("revoked %zu user(s); saturation %zu/%zu, period %llu\n",
              ids.size(), h.mgr().saturation_level(),
              h.mgr().saturation_limit(),
              static_cast<unsigned long long>(h.mgr().period()));
  emit_reset_bundles(bundles, h.mgr().params().group, reset_prefix);
  return 0;
}

int cmd_new_period(std::vector<std::string> args) {
  if (args.empty()) {
    die("new-period: usage: new-period <state> [--reset-out prefix]");
  }
  const std::string state_path = args[0];
  args.erase(args.begin());
  const std::string reset_prefix =
      flag_value(args, "--reset-out").value_or("reset");
  reject_unknown_flags(args, "new-period");
  StateHandle h = load_state(state_path);
  SystemRng rng;
  const SignedResetBundle bundle =
      h.is_store() ? h.store->new_period(rng) : h.legacy->new_period(rng);
  h.save_legacy();
  std::printf("advanced to period %llu; saturation %zu/%zu\n",
              static_cast<unsigned long long>(h.mgr().period()),
              h.mgr().saturation_level(), h.mgr().saturation_limit());
  emit_reset_bundles({bundle}, h.mgr().params().group, reset_prefix);
  return 0;
}

int cmd_encrypt(std::vector<std::string> args) {
  reject_unknown_flags(args, "encrypt");
  if (args.size() < 3) die("encrypt: usage: encrypt <state> <payload> <out>");
  const StateHandle h = load_state(args[0]);
  const SecurityManager& mgr = h.mgr();
  const Bytes payload = read_file(args[1]);
  SystemRng rng;
  const ContentMessage msg =
      seal_content(mgr.params(), mgr.public_key(), payload, rng);
  Writer w;
  msg.serialize(w, mgr.params().group);
  write_file(args[2], w.bytes());
  BroadcastBus bus;
  bus.publish({MsgType::kContent, w.bytes()});
  std::printf("encrypted %zu bytes -> %s (%zu bytes on the wire)\n",
              payload.size(), args[2].c_str(), w.size());
  return 0;
}

int cmd_decrypt(std::vector<std::string> args) {
  reject_unknown_flags(args, "decrypt");
  if (args.size() < 2) die("decrypt: usage: decrypt <key-file> <broadcast>");
  const KeyFile kf = read_key_file(args[0]);
  const Bytes raw = read_file(args[1]);
  Reader r(raw);
  const ContentMessage msg = ContentMessage::deserialize(r, kf.sp.group);
  r.expect_end();
  const Bytes payload = open_content(kf.sp, kf.key, msg);
  std::fwrite(payload.data(), 1, payload.size(), stdout);
  return 0;
}

int cmd_apply_reset(std::vector<std::string> args) {
  reject_unknown_flags(args, "apply-reset");
  if (args.size() < 2) {
    die("apply-reset: usage: apply-reset <key-file> <reset-file>");
  }
  KeyFile kf = read_key_file(args[0]);
  const Bytes raw = read_file(args[1]);
  Reader r(raw);
  const SignedResetBundle bundle =
      SignedResetBundle::deserialize(r, kf.sp.group);
  r.expect_end();
  Receiver receiver(kf.sp, kf.key, kf.manager_vk);
  switch (receiver.apply_reset(bundle)) {
    case ResetOutcome::kApplied:
      break;
    case ResetOutcome::kStaleIgnored:
      std::printf("key already at period %llu; stale reset ignored\n",
                  static_cast<unsigned long long>(receiver.period()));
      return 0;
    case ResetOutcome::kGapDetected:
      die("apply-reset: reset is for period " +
          std::to_string(bundle.reset.new_period) + " but key is at period " +
          std::to_string(receiver.period()) +
          "; apply the missing resets first");
    case ResetOutcome::kCannotFollow:
      die("apply-reset: this key cannot open the reset message (revoked "
          "before period " +
          std::to_string(bundle.reset.new_period) + ")");
  }
  // Rewrite the key file with the updated key.
  write_file(args[0], encode_key_file(kf.sp, kf.manager_vk, receiver.key()));
  std::printf("key updated to period %llu\n",
              static_cast<unsigned long long>(receiver.period()));
  return 0;
}

int cmd_pirate(std::vector<std::string> args) {
  reject_unknown_flags(args, "pirate");
  if (args.size() < 3) {
    die("pirate: usage: pirate <state> <rep-out> <key-file...>");
  }
  const StateHandle h = load_state(args[0]);
  const SecurityManager& mgr = h.mgr();
  std::vector<UserKey> keys;
  for (std::size_t i = 2; i < args.size(); ++i) {
    keys.push_back(read_key_file(args[i]).key);
  }
  SystemRng rng;
  const Representation rep = build_pirate_representation(
      mgr.params(), mgr.public_key(), keys, rng);
  Writer w;
  put_bigint(w, rep.gamma_a);
  put_bigint(w, rep.gamma_b);
  put_bigint_vec(w, rep.tail);
  write_file(args[1], w.bytes());
  std::printf("pirate representation (%zu colluders) -> %s\n", keys.size(),
              args[1].c_str());
  return 0;
}

int cmd_trace(std::vector<std::string> args) {
  reject_unknown_flags(args, "trace");
  if (args.size() < 2) die("trace: usage: trace <state> <rep-file>");
  const StateHandle h = load_state(args[0]);
  const SecurityManager& mgr = h.mgr();
  const Bytes raw = read_file(args[1]);
  Reader r(raw);
  Representation rep;
  rep.gamma_a = get_bigint(r);
  rep.gamma_b = get_bigint(r);
  rep.tail = get_bigint_vec(r);
  r.expect_end();
  const TraceResult result = trace_nonblackbox(
      mgr.params(), mgr.public_key(), rep, mgr.users());
  std::printf("traced %zu traitor(s):", result.traitors.size());
  for (const auto& t : result.traitors) {
    std::printf(" #%llu", static_cast<unsigned long long>(t.id));
  }
  std::printf("\n");
  return 0;
}

// ---- talking to a live dfkyd --------------------------------------------------

/// Connect retry policy (--retry-ms / --retry-max, global flags). A daemon
/// restart or failover window shows up to clients as ECONNREFUSED (socket
/// file exists, nobody listening), ENOENT (socket not recreated yet) or a
/// reset; retrying with capped exponential backoff + jitter masks the gap.
/// Defaults: start at 25ms, double to a 500ms cap, give up after 40
/// attempts (~15s of failover headroom). --retry-max 0 disables retrying.
struct RetryPolicy {
  std::uint64_t base_ms = 25;
  std::uint64_t max_attempts = 40;
};
RetryPolicy g_retry;

bool connect_errno_transient(int err) {
  return err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
         err == ECONNRESET || err == ETIMEDOUT;
}

/// Connects to a dfkyd unix socket, retrying transient failures per
/// `g_retry`; dies with a helpful message once the budget is spent.
int connect_daemon(const std::string& socket_path) {
  std::uint64_t delay_ms = g_retry.base_ms;
  // Deterministic per-process jitter stream; enough to de-synchronize a
  // herd of scripted clients hammering a restarting daemon.
  std::uint32_t jitter_state =
      static_cast<std::uint32_t>(::getpid()) * 2654435761u + 1u;
  for (std::uint64_t attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) die("client: socket: " + std::string(std::strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      die("client: socket path too long: " + socket_path);
    }
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    if (!connect_errno_transient(err) || attempt + 1 >= g_retry.max_attempts) {
      die("client: cannot connect to " + socket_path + ": " +
          std::strerror(err) + " (is dfkyd running?" +
          (g_retry.max_attempts > 1
               ? " gave up after " + std::to_string(attempt + 1) + " attempts"
               : "") +
          ")");
    }
    jitter_state = jitter_state * 1664525u + 1013904223u;
    const std::uint64_t jitter = jitter_state % (delay_ms / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms + jitter));
    delay_ms = std::min<std::uint64_t>(delay_ms * 2, 500);
  }
}

/// Sends all of `data`; returns false on a broken connection.
bool send_str(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// One request/response round over the daemon's unix socket.
std::string daemon_request(const std::string& socket_path,
                           const std::string& line) {
  const int fd = connect_daemon(socket_path);
  if (!send_str(fd, line + "\n")) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    die("client: send: " + err);
  }
  std::string resp;
  char buf[1 << 16];
  while (resp.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t nl = resp.find('\n');
  if (nl == std::string::npos) {
    die("client: daemon closed the connection before responding");
  }
  return resp.substr(0, nl);
}

daemon::Response expect_ok(const std::string& raw) {
  const std::optional<daemon::Response> r = daemon::parse_response(raw);
  if (!r) die("client: malformed daemon response: " + raw);
  if (!r->ok) die("client: daemon error: " + r->error);
  return *r;
}

const std::string& response_field(const daemon::Response& r,
                                  const std::string& key) {
  const auto it = r.fields.find(key);
  if (it == r.fields.end()) {
    die("client: daemon response is missing field '" + key + "'");
  }
  return it->second;
}

Bytes decode_blob_field(const daemon::Response& r, const std::string& key) {
  const std::optional<Bytes> b = daemon::hex_decode(response_field(r, key));
  if (!b) die("client: daemon field '" + key + "' is not hex");
  return *b;
}

/// Writes the hex bundles of a `revoke`/`new-period` response as
/// `<prefix>.<i>.bin`, the same naming the offline commands use, so
/// `apply-reset` works on either path.
std::size_t write_bundles_csv(const std::string& csv,
                              const std::string& prefix) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::optional<Bytes> bundle =
        daemon::hex_decode(std::string_view(csv).substr(start, comma - start));
    if (!bundle) die("client: daemon bundle is not hex");
    const std::string path = prefix + "." + std::to_string(count) + ".bin";
    write_file(path, *bundle);
    std::printf("period change -> %s (%zu bytes)\n", path.c_str(),
                bundle->size());
    ++count;
    start = comma + 1;
  }
  return count;
}

/// `client <socket> pipeline [--window W]` — the pipelined client mode
/// (DESIGN.md Sect. 11). Reads protocol request lines from stdin, tags
/// request i with `@<i>`, and keeps up to W requests in flight over ONE
/// connection before reading replies. A sharded daemon completes tagged
/// requests out of order; the echoed tags let this client print every
/// response in input order regardless. Strict accounting: a missing,
/// duplicated, or unknown response id is fatal. Exit 0 when every request
/// was answered `ok`, 1 when any was answered `err`.
int cmd_client_pipeline(const std::string& sock,
                        std::vector<std::string> args) {
  const std::size_t window = static_cast<std::size_t>(
      parse_count("client pipeline", "--window",
                  flag_value(args, "--window").value_or("32")));
  reject_unknown_flags(args, "client pipeline");
  if (!args.empty()) {
    die_usage("client: usage: client <socket> pipeline [--window W] < requests");
  }
  if (window == 0) die("client pipeline: --window must be positive");

  std::vector<std::string> reqs;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '@') {
      die("client pipeline: requests must not carry @tags "
          "(they are assigned automatically)");
    }
    reqs.push_back(line);
  }
  if (reqs.empty()) {
    std::printf("pipelined 0 request(s)\n");
    return 0;
  }

  const int fd = connect_daemon(sock);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t received = 0;
  bool broken = false;

  // Writer on its own thread, reader on this one: the two never block
  // each other, so a full socket buffer can't deadlock the client the
  // way write-then-read lockstep with a large window would.
  std::thread sender([&] {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return i < received + window || broken; });
        if (broken) return;
      }
      const std::string req = "@" + std::to_string(i) + " " + reqs[i] + "\n";
      if (!send_str(fd, req)) {
        std::lock_guard lk(mu);
        broken = true;
        return;
      }
    }
  });

  std::map<std::uint64_t, std::string> responses;  // id -> untagged line
  std::size_t next_print = 0;
  std::size_t errors = 0;
  std::string fail;  // deferred die(): the sender must be joined first
  std::string buf;
  char chunk[1 << 16];
  while (fail.empty() && received < reqs.size()) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      fail = "daemon closed the connection after " +
             std::to_string(received) + " of " + std::to_string(reqs.size()) +
             " replies";
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while (fail.empty() && (pos = buf.find('\n')) != std::string::npos) {
      const std::string resp = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      const std::optional<daemon::Response> r = daemon::parse_response(resp);
      if (!r || !r->id) {
        fail = "malformed pipelined response: " + resp;
        break;
      }
      if (*r->id >= reqs.size() || responses.count(*r->id)) {
        fail = "response id " + std::to_string(*r->id) +
               (responses.count(*r->id) ? " duplicated" : " never requested");
        break;
      }
      if (!r->ok) ++errors;
      const std::size_t tag_end = resp.find(' ');
      responses[*r->id] = resp.substr(tag_end + 1);
      {
        std::lock_guard lk(mu);
        ++received;
      }
      cv.notify_all();
      while (next_print < reqs.size() && responses.count(next_print)) {
        std::printf("[%zu] %s\n", next_print,
                    responses[next_print].c_str());
        ++next_print;
      }
    }
  }
  {
    std::lock_guard lk(mu);
    broken = true;  // unblock the sender if we bailed early
  }
  cv.notify_all();
  sender.join();
  ::close(fd);
  if (!fail.empty()) die("client pipeline: " + fail);
  std::printf("pipelined %zu request(s), window %zu, %zu error(s)\n",
              reqs.size(), window, errors);
  return errors == 0 ? 0 : 1;
}

/// Single connect attempt, no retries, no die(): the soak harness runs
/// against daemons that are deliberately shedding, and a refused or
/// reset connection is a data point there, not a fatal error.
int connect_once(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// `client <socket> soak [--idle N] [--active M] [--per K] [--hold-ms T]`
/// — connection-scale load harness for the reactor front end (DESIGN.md
/// Sect. 15). Opens N idle connections and HOLDS them (pipeline can't:
/// it reads stdin to EOF before connecting), then runs M concurrent
/// workers that each pipeline K tagged pings over their own connection.
/// With --hold-ms the idle herd stays connected that long after the
/// active phase — the e2e suite uses a pure-idle soak as the
/// fd-exhaustion holder. Exits 0 when every active request was answered
/// `ok`; connect failures on the idle herd are reported, not fatal (a
/// daemon at its fd limit is expected to shed them).
int cmd_client_soak(const std::string& sock, std::vector<std::string> args) {
  const auto idle = static_cast<std::size_t>(parse_count(
      "client soak", "--idle", flag_value(args, "--idle").value_or("0")));
  const auto active = static_cast<std::size_t>(parse_count(
      "client soak", "--active", flag_value(args, "--active").value_or("0")));
  const auto per = static_cast<std::size_t>(parse_count(
      "client soak", "--per", flag_value(args, "--per").value_or("100")));
  const auto hold_ms = parse_count(
      "client soak", "--hold-ms", flag_value(args, "--hold-ms").value_or("0"));
  reject_unknown_flags(args, "client soak");
  if (!args.empty()) {
    die_usage(
        "client: usage: client <socket> soak [--idle N] [--active M] "
        "[--per K] [--hold-ms T]");
  }

  // The soak's own fd budget has to cover the herd.
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }

  std::vector<int> held;
  held.reserve(idle);
  std::size_t idle_failed = 0;
  for (std::size_t i = 0; i < idle; ++i) {
    const int fd = connect_once(sock);
    if (fd < 0) {
      ++idle_failed;
      continue;
    }
    held.push_back(fd);
  }

  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> answered{0};
  std::vector<std::thread> workers;
  workers.reserve(active);
  for (std::size_t w = 0; w < active; ++w) {
    workers.emplace_back([&, w] {
      const int fd = connect_once(sock);
      if (fd < 0) {
        errors.fetch_add(per);
        return;
      }
      std::string out;
      for (std::size_t i = 0; i < per; ++i) {
        out += "@" + std::to_string(w * per + i) + " ping\n";
      }
      if (!send_str(fd, out)) {
        errors.fetch_add(per);
        ::close(fd);
        return;
      }
      std::string buf;
      char chunk[1 << 16];
      std::size_t got = 0;
      while (got < per) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos;
        while ((pos = buf.find('\n')) != std::string::npos) {
          const std::string resp = buf.substr(0, pos);
          buf.erase(0, pos + 1);
          ++got;
          const std::optional<daemon::Response> r =
              daemon::parse_response(resp);
          if (!r || !r->ok) errors.fetch_add(1);
        }
      }
      answered.fetch_add(got);
      if (got < per) errors.fetch_add(per - got);
      ::close(fd);
    });
  }
  for (std::thread& w : workers) w.join();

  if (hold_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
  }
  for (const int fd : held) ::close(fd);

  std::printf(
      "soak: %zu idle conn(s) held (%zu refused), %zu worker(s) x %zu "
      "request(s), %zu answered, %zu error(s)\n",
      held.size(), idle_failed, active, per, answered.load(), errors.load());
  return errors.load() == 0 ? 0 : 1;
}

/// Reads one LF line from a held stream connection; empty optional on
/// EOF or error. Unlike daemon_request, the connection stays open — the
/// feed modes live on one socket for their whole run.
std::optional<std::string> stream_line(int fd, std::string& buf) {
  for (;;) {
    const std::size_t pos = buf.find('\n');
    if (pos != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      return line;
    }
    char chunk[1 << 16];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// `client <socket> subscribe [--from-period P] [--count N]` — upgrades
/// the connection to a push stream (DESIGN.md Sect. 16) and prints every
/// broadcast frame as it lands. With --from-period the daemon replays the
/// missed epochs out of its reset archives first; with --count the
/// client exits 0 after N frames (0: stream until the daemon goes away).
int cmd_client_subscribe(const std::string& sock,
                         std::vector<std::string> args) {
  const std::optional<std::string> from = flag_value(args, "--from-period");
  const auto count = parse_count("client subscribe", "--count",
                                 flag_value(args, "--count").value_or("0"));
  reject_unknown_flags(args, "client subscribe");
  if (!args.empty()) {
    die_usage(
        "client: usage: client <socket> subscribe [--from-period P] "
        "[--count N]");
  }
  std::string req = "subscribe";
  if (from) {
    req += " " + std::to_string(
                     parse_count("client subscribe", "--from-period", *from));
  }
  const int fd = connect_daemon(sock);
  if (!send_str(fd, req + "\n")) die("client: send: subscribe");
  std::string buf;
  const std::optional<std::string> first = stream_line(fd, buf);
  if (!first) die("client: daemon closed the connection before responding");
  const std::optional<daemon::Response> r = daemon::parse_response(*first);
  if (!r) die("client: malformed daemon response: " + *first);
  if (!r->ok) {
    ::close(fd);
    die("client: daemon error: " + r->error);
  }
  std::printf("subscribed period=%s replayed=%s\n",
              response_field(*r, "period").c_str(),
              response_field(*r, "replayed").c_str());
  std::fflush(stdout);
  std::uint64_t frames = 0;
  while (count == 0 || frames < count) {
    const std::optional<std::string> line = stream_line(fd, buf);
    if (!line) {
      ::close(fd);
      // A finite subscription cut short is a failure; an open-ended one
      // ends whenever the daemon does.
      if (count != 0) die("client: stream ended before --count frames");
      return 0;
    }
    std::printf("%s\n", line->c_str());
    std::fflush(stdout);
    ++frames;
  }
  ::close(fd);
  return 0;
}

/// `client <socket> storm [--receivers N] [--periods G] [--workers W]` —
/// the catch-up-storm load driver (DESIGN.md Sect. 16). Parks N
/// connections, advances the epoch G times behind their backs, then has
/// every connection subscribe from the pre-gap period at once: the
/// daemon must bridge each one over the missed epochs via replay and
/// land it on the live stream. Exits 0 only when every receiver
/// recovered (full replay, correct period).
int cmd_client_storm(const std::string& sock, std::vector<std::string> args) {
  const auto receivers = static_cast<std::size_t>(
      parse_count("client storm", "--receivers",
                  flag_value(args, "--receivers").value_or("1000")));
  const auto periods = parse_count(
      "client storm", "--periods", flag_value(args, "--periods").value_or("1"));
  const auto workers = static_cast<std::size_t>(parse_count(
      "client storm", "--workers", flag_value(args, "--workers").value_or("8")));
  reject_unknown_flags(args, "client storm");
  if (!args.empty() || receivers == 0 || periods == 0 || workers == 0) {
    die_usage(
        "client: usage: client <socket> storm [--receivers N] [--periods G] "
        "[--workers W]");
  }

  // The herd's fd budget.
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }

  const daemon::Response status = expect_ok(daemon_request(sock, "status"));
  const std::uint64_t before =
      parse_count("client storm", "status period",
                  response_field(status, "period"));

  // Park the herd first: these connections exist while the epochs roll,
  // exactly like receivers that were offline for the broadcasts.
  std::vector<int> herd;
  herd.reserve(receivers);
  std::size_t refused = 0;
  for (std::size_t i = 0; i < receivers; ++i) {
    const int fd = connect_once(sock);
    if (fd < 0) {
      ++refused;
      continue;
    }
    const timeval tv{.tv_sec = 30, .tv_usec = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    herd.push_back(fd);
  }

  // The missed epochs, committed behind the parked herd's back.
  for (std::uint64_t g = 0; g < periods; ++g) {
    expect_ok(daemon_request(sock, "new-period"));
  }
  const std::uint64_t after =
      parse_count("client storm", "status period",
                  response_field(expect_ok(daemon_request(sock, "status")),
                                 "period"));

  // Release the herd: every connection subscribes from the pre-gap
  // period at once and must be replayed up to `after`.
  std::atomic<std::size_t> recovered{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::uint64_t> frames_replayed{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = w; i < herd.size(); i += workers) {
        const int fd = herd[i];
        if (!send_str(fd, "subscribe " + std::to_string(before) + "\n")) {
          failed.fetch_add(1);
          continue;
        }
        std::string buf;
        const std::optional<std::string> first = stream_line(fd, buf);
        const std::optional<daemon::Response> r =
            first ? daemon::parse_response(*first) : std::nullopt;
        if (!r || !r->ok) {
          failed.fetch_add(1);
          continue;
        }
        const auto replayed = daemon::parse_u64(r->fields.at("replayed"));
        const auto at = daemon::parse_u64(r->fields.at("period"));
        if (!replayed || !at || *at < after || *replayed < after - before) {
          failed.fetch_add(1);
          continue;
        }
        // Drain the replayed epochs off the wire: recovery means the
        // frames actually arrived, not just that the daemon promised.
        std::uint64_t got = 0;
        while (got < *replayed) {
          const std::optional<std::string> line = stream_line(fd, buf);
          if (!line || line->rfind("bcast ", 0) != 0) break;
          ++got;
        }
        frames_replayed.fetch_add(got);
        if (got == *replayed) {
          recovered.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const int fd : herd) ::close(fd);

  std::printf(
      "storm: receivers=%zu (%zu refused) periods=%llu->%llu recovered=%zu "
      "failed=%zu frames_replayed=%llu\n",
      receivers, refused, static_cast<unsigned long long>(before),
      static_cast<unsigned long long>(after), recovered.load(), failed.load(),
      static_cast<unsigned long long>(frames_replayed.load()));
  return (recovered.load() == receivers && refused == 0) ? 0 : 1;
}

int cmd_client(std::vector<std::string> args) {
  if (args.size() < 2) {
    die_usage(
        "client: usage: client <socket> "
        "(ping|status|add|revoke|new-period|encrypt|pipeline|soak"
        "|subscribe|storm|repl-status|health|trace|promote|demote|shutdown) "
        "...");
  }
  const std::string sock = args[0];
  const std::string sub = args[1];
  args.erase(args.begin(), args.begin() + 2);

  if (sub == "pipeline") {
    return cmd_client_pipeline(sock, std::move(args));
  }
  if (sub == "soak") {
    return cmd_client_soak(sock, std::move(args));
  }
  if (sub == "subscribe") {
    return cmd_client_subscribe(sock, std::move(args));
  }
  if (sub == "storm") {
    return cmd_client_storm(sock, std::move(args));
  }
  if (sub == "ping" || sub == "status" || sub == "repl-status") {
    reject_unknown_flags(args, "client " + sub);
    const daemon::Response r = expect_ok(daemon_request(sock, sub));
    for (const auto& [k, v] : r.fields) {
      std::printf("%s: %s\n", k.c_str(), v.c_str());
    }
    return 0;
  }
  if (sub == "health") {
    reject_unknown_flags(args, "client health");
    const daemon::Response r = expect_ok(daemon_request(sock, "health"));
    const std::string& verdict = response_field(r, "verdict");
    std::printf("verdict: %s\n", verdict.c_str());
    for (const auto& [k, v] : r.fields) {
      if (k != "verdict") std::printf("%s: %s\n", k.c_str(), v.c_str());
    }
    // Health-check exit semantics: scripts can gate on the verdict without
    // parsing the output.
    return verdict == "ok" ? 0 : 1;
  }
  if (sub == "trace") {
    reject_unknown_flags(args, "client trace");
    if (args.size() > 1) {
      die_usage("client: usage: client <socket> trace [max]");
    }
    std::string req = "trace";
    if (args.size() == 1) {
      req += " " + std::to_string(parse_count("client trace", "max", args[0]));
    }
    const daemon::Response r = expect_ok(daemon_request(sock, req));
    const Bytes jsonl = decode_blob_field(r, "jsonl");
    std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
    return 0;
  }
  if (sub == "promote") {
    reject_unknown_flags(args, "client promote");
    const daemon::Response r = expect_ok(daemon_request(sock, "promote"));
    const auto already = r.fields.find("already");
    const auto term = r.fields.find("term");
    const std::string term_sfx =
        term != r.fields.end() ? " at term " + term->second : std::string();
    if (already != r.fields.end() && already->second == "1") {
      // Idempotent re-promote: report it distinctly (exit 3) so failover
      // scripts can tell "I won" from "someone beat me to it".
      std::printf("already primary%s (period %s)\n", term_sfx.c_str(),
                  response_field(r, "period").c_str());
      return 3;
    }
    std::printf("promoted to %s%s at period %s (%s WAL record(s))\n",
                response_field(r, "role").c_str(), term_sfx.c_str(),
                response_field(r, "period").c_str(),
                response_field(r, "wal_records").c_str());
    return 0;
  }
  if (sub == "demote") {
    reject_unknown_flags(args, "client demote");
    const daemon::Response r = expect_ok(daemon_request(sock, "demote"));
    const auto already = r.fields.find("already");
    const auto term = r.fields.find("term");
    const std::string term_sfx =
        term != r.fields.end() ? " at term " + term->second : std::string();
    if (already != r.fields.end() && already->second == "1") {
      std::printf("already a follower%s (period %s)\n", term_sfx.c_str(),
                  response_field(r, "period").c_str());
      return 3;
    }
    std::printf("demoted to %s%s at period %s\n",
                response_field(r, "role").c_str(), term_sfx.c_str(),
                response_field(r, "period").c_str());
    return 0;
  }
  if (sub == "shutdown") {
    reject_unknown_flags(args, "client shutdown");
    expect_ok(daemon_request(sock, "shutdown"));
    std::printf("daemon acknowledged shutdown\n");
    return 0;
  }
  if (sub == "add") {
    reject_unknown_flags(args, "client add");
    if (args.size() != 1) {
      die_usage("client: usage: client <socket> add <key-out>");
    }
    const daemon::Response r = expect_ok(daemon_request(sock, "add-user"));
    write_file(args[0], decode_blob_field(r, "key"));
    std::printf("added user #%s -> %s\n", response_field(r, "id").c_str(),
                args[0].c_str());
    return 0;
  }
  if (sub == "revoke") {
    const std::string reset_prefix =
        flag_value(args, "--reset-out").value_or("reset");
    reject_unknown_flags(args, "client revoke");
    if (args.empty()) {
      die_usage(
          "client: usage: client <socket> revoke <id...> [--reset-out P]");
    }
    std::string req = "revoke";
    for (const std::string& a : args) {
      req += " " + std::to_string(parse_count("client revoke", "user id", a));
    }
    const daemon::Response r = expect_ok(daemon_request(sock, req));
    std::printf("revoked %zu user(s); saturation %s, period %s\n", args.size(),
                response_field(r, "saturation").c_str(),
                response_field(r, "period").c_str());
    write_bundles_csv(response_field(r, "bundles"), reset_prefix);
    return 0;
  }
  if (sub == "new-period") {
    const std::string reset_prefix =
        flag_value(args, "--reset-out").value_or("reset");
    reject_unknown_flags(args, "client new-period");
    const daemon::Response r = expect_ok(daemon_request(sock, "new-period"));
    std::printf("advanced to period %s; saturation %s\n",
                response_field(r, "period").c_str(),
                response_field(r, "saturation").c_str());
    write_bundles_csv(response_field(r, "bundles"), reset_prefix);
    return 0;
  }
  if (sub == "encrypt") {
    const std::optional<std::string> shard = flag_value(args, "--shard");
    reject_unknown_flags(args, "client encrypt");
    if (args.size() != 2) {
      die_usage(
          "client: usage: client <socket> encrypt <payload> <out> "
          "[--shard K]");
    }
    const Bytes payload = read_file(args[0]);
    std::string req = "encrypt " + daemon::hex_encode(payload);
    if (shard) {
      req += " " + std::to_string(
                       parse_count("client encrypt", "--shard", *shard));
    }
    const daemon::Response r = expect_ok(daemon_request(sock, req));
    const Bytes ct = decode_blob_field(r, "ct");
    write_file(args[1], ct);
    std::printf("encrypted %zu bytes -> %s (%zu bytes on the wire)\n",
                payload.size(), args[1].c_str(), ct.size());
    return 0;
  }
  die_usage("client: unknown daemon command '" + sub + "'");
}

// ---- metrics snapshots and the stats subcommand -------------------------------

/// Appends this process's metrics snapshot to `path`. In a DFKY_OBS=OFF
/// build only the meta line is written, so `stats` (and scripts) can tell
/// "layer disabled" apart from "nothing happened". Each snapshot's meta
/// line is stamped with the wall-clock time so `stats --since` can window
/// a long-running session's file.
void append_metrics_snapshot(const std::string& path) {
  std::ofstream out(path, std::ios::app);
  if (!out) die("cannot write metrics file " + path);
  const std::string ts = ",\"ts\":" + std::to_string(std::time(nullptr));
  if (obs::enabled()) {
    // The registry's meta line leads the snapshot; splice the timestamp
    // into it and pass the rest through untouched.
    std::string snap = obs::MetricsRegistry::instance().jsonl();
    const std::string marker = "\"kind\":\"meta\"";
    const std::size_t at = snap.find(marker);
    if (at != std::string::npos) {
      snap.insert(at + marker.size(), ts);
    }
    out << snap;
  } else {
    out << "{\"kind\":\"meta\"" << ts
        << ",\"obs\":\"off\",\"schema\":\"dfky-metrics-v1\"}\n";
  }
}

/// Metrics merged across the snapshots of a scripted session. Keys are the
/// Prometheus-style `name{k="v",...}` rendering, so the maps sort exactly
/// like the exporters do.
struct MergedMetrics {
  struct Hist {
    std::vector<double> bounds;
    std::vector<double> cumulative;  // per bucket incl. +Inf, summed
    double count = 0;
    double sum = 0;
  };
  std::map<std::string, double> counters;    // summed
  std::map<std::string, double> gauges;      // last write wins
  std::map<std::string, Hist> histograms;    // buckets added elementwise
  std::map<std::string, std::size_t> event_counts;
  std::vector<json::Value> events;           // in file order
  std::size_t snapshots = 0;
  bool obs_on = false;
};

std::string series_key(const json::Value& line) {
  std::string key = line.find("name")->as_string();
  const json::Value* labels = line.find("labels");
  if (labels && !labels->as_object().empty()) {
    key += "{";
    bool first = true;
    for (const auto& [k, v] : labels->as_object()) {
      if (!first) key += ",";
      first = false;
      key += k + "=\"" + json::escape(v.as_string()) + "\"";
    }
    key += "}";
  }
  return key;
}

std::vector<double> number_array(const json::Value& v) {
  std::vector<double> out;
  for (const json::Value& x : v.as_array()) out.push_back(x.as_number());
  return out;
}

/// Merges the snapshots in `path`. With `since` set, snapshots whose meta
/// line carries no timestamp or a timestamp before `since` are skipped
/// wholesale (every line up to the next meta line belongs to the snapshot
/// that opened it).
MergedMetrics read_metrics_file(const std::string& path,
                                std::optional<double> since = std::nullopt) {
  std::ifstream in(path);
  if (!in) die("cannot open metrics file " + path);
  MergedMetrics m;
  std::string line;
  std::size_t lineno = 0;
  bool in_window = !since.has_value();
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    json::Value v;
    try {
      v = json::Value::parse(line);
    } catch (const DecodeError& e) {
      die(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
    const json::Value* kind = v.find("kind");
    if (!kind) die(path + ":" + std::to_string(lineno) + ": missing \"kind\"");
    const std::string& k = kind->as_string();
    if (k == "meta") {
      if (since) {
        const json::Value* ts = v.find("ts");
        in_window = ts && ts->as_number() >= *since;
      }
      if (!in_window) continue;
      ++m.snapshots;
      const json::Value* o = v.find("obs");
      if (o && o->as_string() == "on") m.obs_on = true;
    } else if (!in_window) {
      continue;
    } else if (k == "counter") {
      m.counters[series_key(v)] += v.find("value")->as_number();
    } else if (k == "gauge") {
      m.gauges[series_key(v)] = v.find("value")->as_number();
    } else if (k == "histogram") {
      MergedMetrics::Hist& h = m.histograms[series_key(v)];
      const std::vector<double> bounds = number_array(*v.find("bounds"));
      const std::vector<double> cum =
          number_array(*v.find("cumulative_counts"));
      if (h.bounds.empty()) {
        h.bounds = bounds;
        h.cumulative.assign(cum.size(), 0.0);
      }
      if (bounds != h.bounds || cum.size() != h.cumulative.size()) {
        die(path + ":" + std::to_string(lineno) +
            ": histogram bounds changed between snapshots");
      }
      for (std::size_t i = 0; i < cum.size(); ++i) h.cumulative[i] += cum[i];
      h.count += v.find("count")->as_number();
      h.sum += v.find("sum")->as_number();
    } else if (k == "event") {
      m.event_counts[v.find("name")->as_string()] += 1;
      m.events.push_back(std::move(v));
    } else {
      die(path + ":" + std::to_string(lineno) + ": unknown kind \"" + k +
          "\"");
    }
  }
  return m;
}

/// Same rank-interpolation rule as Histogram::Snapshot::quantile, applied
/// to the merged buckets.
double merged_quantile(const MergedMetrics::Hist& h, double q) {
  if (h.count <= 0) return 0.0;
  const double rank = q * h.count;
  double prev_cum = 0, prev_bound = 0;
  for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
    const double cum = h.cumulative[i];
    if (rank <= cum || i + 1 == h.cumulative.size()) {
      if (i >= h.bounds.size()) {
        // +Inf bucket: no upper bound to interpolate against.
        return h.bounds.empty() ? h.sum / h.count : h.bounds.back();
      }
      const double in_bucket = cum - prev_cum;
      if (in_bucket <= 0) return h.bounds[i];
      const double frac = (rank - prev_cum) / in_bucket;
      return prev_bound + frac * (h.bounds[i] - prev_bound);
    }
    prev_cum = cum;
    if (i < h.bounds.size()) prev_bound = h.bounds[i];
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

std::string fmt_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  else if (ns >= 1e6) std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  else if (ns >= 1e3) std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  else std::snprintf(buf, sizeof buf, "%.0fns", ns);
  return buf;
}

void print_summary(const MergedMetrics& m) {
  std::printf("snapshots: %zu  (obs layer: %s)\n", m.snapshots,
              m.obs_on ? "on" : "off");
  if (!m.counters.empty()) {
    std::printf("\n# counters\n");
    for (const auto& [k, v] : m.counters) {
      std::printf("  %-56s %s\n", k.c_str(), json::format_number(v).c_str());
    }
  }
  if (!m.gauges.empty()) {
    std::printf("\n# gauges\n");
    for (const auto& [k, v] : m.gauges) {
      std::printf("  %-56s %s\n", k.c_str(), json::format_number(v).c_str());
    }
  }
  if (!m.histograms.empty()) {
    std::printf("\n# timings\n");
    for (const auto& [k, h] : m.histograms) {
      std::printf("  %-44s count=%-6s p50=%-10s p95=%s\n", k.c_str(),
                  json::format_number(h.count).c_str(),
                  fmt_ns(merged_quantile(h, 0.5)).c_str(),
                  fmt_ns(merged_quantile(h, 0.95)).c_str());
    }
  }
  if (!m.event_counts.empty()) {
    std::printf("\n# events\n");
    for (const auto& [k, n] : m.event_counts) {
      std::printf("  %-56s %zu\n", k.c_str(), n);
    }
  }
}

void print_prometheus(const MergedMetrics& m) {
  for (const auto& [k, v] : m.counters) {
    std::printf("%s %s\n", k.c_str(), json::format_number(v).c_str());
  }
  for (const auto& [k, v] : m.gauges) {
    std::printf("%s %s\n", k.c_str(), json::format_number(v).c_str());
  }
  for (const auto& [k, h] : m.histograms) {
    // Splice `le` into an existing label set: name{a="b"} -> name_bucket{a="b",le="..."}.
    const std::size_t brace = k.find('{');
    const std::string name = k.substr(0, brace == std::string::npos ? k.size() : brace);
    const std::string inner =
        brace == std::string::npos ? "" : k.substr(brace + 1, k.size() - brace - 2);
    for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
      const std::string le = i < h.bounds.size()
                                 ? json::format_number(h.bounds[i])
                                 : std::string("+Inf");
      std::printf("%s_bucket{%s%sle=\"%s\"} %s\n", name.c_str(), inner.c_str(),
                  inner.empty() ? "" : ",", le.c_str(),
                  json::format_number(h.cumulative[i]).c_str());
    }
    std::printf("%s_sum%s %s\n", name.c_str(),
                brace == std::string::npos ? "" : k.substr(brace).c_str(),
                json::format_number(h.sum).c_str());
    std::printf("%s_count%s %s\n", name.c_str(),
                brace == std::string::npos ? "" : k.substr(brace).c_str(),
                json::format_number(h.count).c_str());
  }
}

/// Drops events (and their counts) that miss the `--name`/`--user` filters.
/// Counters/gauges/histograms are left alone — the filters select from the
/// longitudinal event log, not the aggregates.
void filter_events(MergedMetrics& m, const std::optional<std::string>& name,
                   std::optional<std::int64_t> user) {
  if (!name && !user) return;
  std::vector<json::Value> kept;
  m.event_counts.clear();
  for (json::Value& ev : m.events) {
    if (name && ev.find("name")->as_string() != *name) continue;
    if (user) {
      const json::Value* u = ev.find("user");
      if (!u || static_cast<std::int64_t>(u->as_number()) != *user) continue;
    }
    m.event_counts[ev.find("name")->as_string()] += 1;
    kept.push_back(std::move(ev));
  }
  m.events = std::move(kept);
}

/// One line per surviving event, in file order — the per-user / per-name
/// timeline view the summary's aggregate counts can't give.
void print_events(const MergedMetrics& m) {
  for (const json::Value& ev : m.events) {
    std::printf("event %s", ev.find("name")->as_string().c_str());
    for (const char* k : {"period", "user", "value"}) {
      if (const json::Value* v = ev.find(k)) {
        std::printf(" %s=%s", k, json::format_number(v->as_number()).c_str());
      }
    }
    if (const json::Value* d = ev.find("detail")) {
      std::printf(" detail=%s", d->as_string().c_str());
    }
    std::printf("\n");
  }
}

int cmd_stats(std::vector<std::string> args) {
  const std::string format = flag_value(args, "--format").value_or("summary");
  std::optional<double> since;
  if (const auto s = flag_value(args, "--since")) {
    since = static_cast<double>(
        parse_count("stats", "--since (a unix timestamp)", *s));
  }
  const std::optional<std::string> name_filter = flag_value(args, "--name");
  if (name_filter && name_filter->empty()) {
    die_usage("stats: --name expects a non-empty event name");
  }
  std::optional<std::int64_t> user_filter;
  if (const auto u = flag_value(args, "--user")) {
    user_filter = static_cast<std::int64_t>(
        parse_count("stats", "--user (a user id)", *u));
  }
  reject_unknown_flags(args, "stats");
  if (args.empty()) {
    die_usage(
        "stats: usage: stats <metrics-file> [--format summary|prom] "
        "[--since TS] [--name EVENT] [--user ID]");
  }
  MergedMetrics m = read_metrics_file(args[0], since);
  filter_events(m, name_filter, user_filter);
  if (format == "summary") {
    print_summary(m);
    if (name_filter || user_filter) print_events(m);
  } else if (format == "prom") {
    print_prometheus(m);
  } else {
    die("stats: unknown format '" + format + "' (summary|prom)");
  }
  return 0;
}

void usage(std::FILE* to) {
  std::fputs(
      "usage: dfky_cli <command> ... [--metrics-out FILE]\n"
      "  init <state> [--v N] [--group NAME] [--store] [--shards N]\n"
      "                                        create a system\n"
      "  status <state>                        show system state\n"
      "  add <state> <key-out>                 subscribe a user\n"
      "  revoke <state> <id...> [--reset-out P]  revoke users\n"
      "  new-period <state> [--reset-out P]    proactive period change\n"
      "  encrypt <state> <payload> <out>       broadcast content\n"
      "  decrypt <key-file> <broadcast>        receive content\n"
      "  apply-reset <key-file> <reset-file>   follow a period change\n"
      "  pirate <state> <rep-out> <key...>     (demo) forge a pirate key\n"
      "  trace <state> <rep-file>              trace a pirate key\n"
      "  stats <metrics-file> [--format summary|prom] [--since TS]\n"
      "        [--name EVENT] [--user ID]   filter the event log by event\n"
      "        name / user id (matching events are listed one per line)\n"
      "  client <socket> <cmd> ...             talk to a running dfkyd\n"
      "      ping | status | add <key-out> | revoke <id...> [--reset-out P]\n"
      "      | new-period [--reset-out P] | encrypt <payload> <out> [--shard K]\n"
      "      | pipeline [--window W]  (requests on stdin, tagged @<n>,\n"
      "        up to W in flight on one connection; replies printed in\n"
      "        input order) | repl-status | health  (cluster verdict\n"
      "        ok/degraded/fail; exit 1 unless ok) | trace [max]  (recent +\n"
      "        slow request traces as JSONL) | promote | demote  (role\n"
      "        flips; re-promote/re-demote exits 3 \"already\") | shutdown\n"
      "      | subscribe [--from-period P] [--count N]  (upgrade to a push\n"
      "        stream: missed epochs replayed, then live broadcast frames\n"
      "        printed as they land; exit after N frames)\n"
      "      | storm [--receivers N] [--periods G] [--workers W]  (catch-up\n"
      "        storm driver: park N connections, roll G epochs, release\n"
      "        them all at once; exit 0 only when every one recovered)\n"
      "      connects retry transient failures with capped exponential\n"
      "      backoff: --retry-ms B (initial delay, default 25, doubling to\n"
      "      500ms) --retry-max N (attempts, default 40; 0 or 1 disables)\n"
      "  help                                  this text\n"
      "\n"
      "<state> is a store directory (init --store: WAL + snapshots, every\n"
      "mutation durable before the command returns; see dfky_fsck), a\n"
      "shard root (init --store --shards N: shard.<k> subdirectories, one\n"
      "WAL/LOCK per shard, served by a sharded dfkyd) or a\n"
      "legacy single state file. --metrics-out FILE appends this\n"
      "invocation's metrics snapshot (JSONL) to FILE; `stats` merges the\n"
      "snapshots of a whole session, `--since TS` windows them by the\n"
      "timestamp stamped on each snapshot.\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 1;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    usage(stdout);
    return 0;
  }
  // Global flags, valid on every subcommand.
  const std::optional<std::string> metrics_out =
      flag_value(args, "--metrics-out");
  if (const auto v = flag_value(args, "--retry-ms")) {
    g_retry.base_ms = parse_count(cmd, "--retry-ms", *v);
    if (g_retry.base_ms == 0) die("--retry-ms must be positive");
  }
  if (const auto v = flag_value(args, "--retry-max")) {
    g_retry.max_attempts = parse_count(cmd, "--retry-max", *v);
  }
  int rc = -1;
  try {
    if (cmd == "init") rc = cmd_init(std::move(args));
    else if (cmd == "status") rc = cmd_status(std::move(args));
    else if (cmd == "add") rc = cmd_add(std::move(args));
    else if (cmd == "revoke") rc = cmd_revoke(std::move(args));
    else if (cmd == "new-period") rc = cmd_new_period(std::move(args));
    else if (cmd == "encrypt") rc = cmd_encrypt(std::move(args));
    else if (cmd == "decrypt") rc = cmd_decrypt(std::move(args));
    else if (cmd == "apply-reset") rc = cmd_apply_reset(std::move(args));
    else if (cmd == "pirate") rc = cmd_pirate(std::move(args));
    else if (cmd == "trace") rc = cmd_trace(std::move(args));
    else if (cmd == "stats") rc = cmd_stats(std::move(args));
    else if (cmd == "client") rc = cmd_client(std::move(args));
  } catch (const Error& e) {
    die(e.what());
  } catch (const std::exception& e) {
    die(std::string("unexpected error: ") + e.what());
  }
  if (rc < 0) {
    std::cerr << "dfky_cli: unknown command '" << cmd << "'\n";
    usage(stderr);
    return 1;
  }
  if (metrics_out) append_metrics_snapshot(*metrics_out);
  return rc;
}
